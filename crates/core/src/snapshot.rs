//! Decomposed, persistence-ready state of the index types.
//!
//! Each index can be taken apart into a plain-data *snapshot state* struct
//! (`Index::to_snapshot` / `Index::from_snapshot`, and likewise for
//! [`crate::SpecialIndex`] and [`crate::ListingIndex`]) holding exactly the
//! query-critical state:
//!
//! * the source model (uncertain string(s), correlations),
//! * the transformed deterministic text and its position mapping,
//! * the suffix substrate as a `(text, SA, LCP)` triple — the suffix tree is
//!   rebuilt from these in one linear, deterministic pass,
//! * the cumulative log-probability prefix sums (serialized verbatim so
//!   window evaluations stay bit-identical),
//! * per-level RMQ champion indices and duplicate masks (champion *values*
//!   are re-derived from the cumulative array on reassembly).
//!
//! The byte-level encoding of these structs lives in the `ustr-store` crate;
//! this module only defines the shapes and the invariant-checked assembly.
//! Reassembly never recomputes the expensive parts of construction (SA-IS,
//! the Lemma-2 transform, level mask sweeps) and produces an index that
//! answers every query identically to the freshly built original.

use ustr_uncertain::{SpecialUncertainString, Transformed, UncertainString};

use crate::{levels::LevelsParts, stats::BuildStats};

/// Suffix substrate of an index: the deterministic text with its suffix and
/// LCP arrays (`ustr_suffix::SuffixTree::{to_parts, from_parts}`).
#[derive(Debug, Clone)]
pub struct TreeState {
    /// The indexed deterministic text (no virtual terminator).
    pub text: Vec<u8>,
    /// Plain suffix array of `text`.
    pub sa: Vec<u32>,
    /// LCP array of `text` (`lcp[0] = 0`).
    pub lcp: Vec<u32>,
}

/// Cumulative log-probability array state
/// (`crate::CumulativeLogProb::{to_parts, from_parts}`).
#[derive(Debug, Clone)]
pub struct CumState {
    /// Prefix sums of per-position log probabilities (`len + 1` entries).
    pub prefix: Vec<f64>,
    /// Running separator counts (`len + 1` entries).
    pub sentinels: Vec<u32>,
}

/// Snapshot state of a general substring [`crate::Index`].
#[derive(Debug, Clone)]
pub struct IndexState {
    /// The source uncertain string (with correlations).
    pub source: UncertainString,
    /// The Lemma-2 transform output.
    pub transformed: Transformed,
    /// Suffix substrate over the transformed text.
    pub tree: TreeState,
    /// Cumulative log probabilities of the transformed text.
    pub cum: CumState,
    /// Per-length RMQ levels.
    pub levels: LevelsParts,
    /// Construction-time threshold.
    pub tau_min: f64,
    /// Whether per-level duplicate elimination was enabled at build time.
    pub dedup_enabled: bool,
    /// Build statistics (the original build's numbers).
    pub stats: BuildStats,
}

/// Snapshot state of a [`crate::SpecialIndex`].
#[derive(Debug, Clone)]
pub struct SpecialIndexState {
    /// The indexed special uncertain string.
    pub special: SpecialUncertainString,
    /// Correlations attached at build time, as plain rows.
    pub correlations: Vec<ustr_uncertain::Correlation>,
    /// Suffix substrate over the string's characters.
    pub tree: TreeState,
    /// Cumulative log probabilities.
    pub cum: CumState,
    /// Per-length RMQ levels.
    pub levels: LevelsParts,
    /// Build statistics.
    pub stats: BuildStats,
}

/// One ε-refined link of an [`crate::ApproxIndex`], as plain data.
///
/// Links are the §7 sub-link table: each connects an origin endpoint at
/// `origin_depth` to a target endpoint at `target_depth` along the path from
/// a marked suffix-tree node toward the root, and carries the probability of
/// the origin-depth prefix at `source_pos`.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxLinkState {
    /// Preorder rank of the (real) node anchoring the origin endpoint.
    pub origin_pre: u32,
    /// String depth of the origin endpoint.
    pub origin_depth: u32,
    /// String depth of the target endpoint (`< origin_depth`).
    pub target_depth: u32,
    /// Original string position (`Posid`).
    pub source_pos: u32,
    /// Probability of the origin-depth prefix at `source_pos`.
    pub prob: f64,
}

/// Snapshot state of an [`crate::ApproxIndex`].
#[derive(Debug, Clone)]
pub struct ApproxIndexState {
    /// The Lemma-2 transform output.
    pub transformed: Transformed,
    /// Suffix substrate over the transformed text.
    pub tree: TreeState,
    /// Cumulative log probabilities of the transformed text.
    pub cum: CumState,
    /// The ε-refined sub-link table, sorted by `origin_pre` (the min-RMQ
    /// over target depths is rebuilt from this on reassembly).
    pub links: Vec<ApproxLinkState>,
    /// The additive error bound ε.
    pub epsilon: f64,
    /// Construction-time threshold.
    pub tau_min: f64,
    /// Build statistics.
    pub stats: BuildStats,
}

/// Snapshot state of a [`crate::ListingIndex`].
#[derive(Debug, Clone)]
pub struct ListingIndexState {
    /// The indexed collection.
    pub docs: Vec<UncertainString>,
    /// Suffix substrate over the concatenated transformed texts.
    pub tree: TreeState,
    /// Cumulative log probabilities.
    pub cum: CumState,
    /// Per-length RMQ levels.
    pub levels: LevelsParts,
    /// Transformed position → document id (`u32::MAX` at separators).
    pub doc_of: Vec<u32>,
    /// Transformed position → offset within its document.
    pub src_of: Vec<u32>,
    /// Start of each document in concatenated source-position space.
    pub doc_base: Vec<u32>,
    /// Construction-time threshold.
    pub tau_min: f64,
    /// Build statistics.
    pub stats: BuildStats,
}

/// Shorthand for snapshot-assembly failures.
pub(crate) fn invalid(detail: impl Into<String>) -> crate::Error {
    crate::Error::InvalidSnapshot {
        detail: detail.into(),
    }
}

/// Validates a `(text, sa, lcp)` triple well enough that
/// `SuffixTree::from_parts` cannot panic: the SA must be a permutation of
/// `0..n` and every LCP entry must be a genuine common-prefix length.
pub(crate) fn validate_tree_state(state: &TreeState) -> Result<(), crate::Error> {
    let n = state.text.len();
    if state.sa.len() != n || state.lcp.len() != n {
        return Err(invalid("suffix/LCP array length does not match text"));
    }
    let mut seen = vec![false; n];
    for &p in &state.sa {
        let p = p as usize;
        if p >= n || seen[p] {
            return Err(invalid("suffix array is not a permutation of 0..n"));
        }
        seen[p] = true;
    }
    for (j, &l) in state.lcp.iter().enumerate() {
        let l = l as usize;
        if j == 0 {
            if l != 0 {
                return Err(invalid("lcp[0] must be 0"));
            }
            continue;
        }
        let (a, b) = (state.sa[j - 1] as usize, state.sa[j] as usize);
        if l > n - a || l > n - b || state.text[a..a + l] != state.text[b..b + l] {
            return Err(invalid("LCP entry exceeds the true common prefix"));
        }
    }
    Ok(())
}
