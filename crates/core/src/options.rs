//! Construction options shared by the indexes.

use ustr_uncertain::TransformOptions;

/// Tuning knobs for index construction. The defaults follow the paper:
/// short levels up to `⌈log₂ N⌉`, long (blocking-scheme) levels at geometric
/// lengths with ratio 2.
#[derive(Debug, Clone, Default)]
pub struct IndexOptions {
    /// Largest pattern length served by the per-length RMQ levels
    /// (`log n` in the paper). `None` = `⌈log₂(N + 1)⌉` of the transformed
    /// text.
    pub max_short_level: Option<usize>,
    /// Geometric ratio between successive long-level block sizes (≥ 2).
    /// `None` = 2.
    pub long_level_ratio: Option<usize>,
    /// Disable the long-pattern blocking levels entirely (queries longer
    /// than the short levels then scan the suffix range directly, i.e. the
    /// simple-index behavior).
    pub disable_long_levels: bool,
    /// Disable per-level duplicate elimination (ablation; outputs are then
    /// deduplicated at query time instead).
    pub disable_dedup: bool,
    /// Options forwarded to the maximal-factor transform.
    pub transform: TransformOptions,
}

impl IndexOptions {
    /// Effective short-level count for a transformed text of `n` slots.
    pub(crate) fn short_levels_for(&self, n: usize) -> usize {
        match self.max_short_level {
            Some(l) => l.max(1),
            None => (usize::BITS - n.max(1).leading_zeros()) as usize, // ceil(log2(n+1))
        }
    }

    /// Effective long-level ratio.
    pub(crate) fn ratio(&self) -> usize {
        self.long_level_ratio.unwrap_or(2).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_levels_scale_logarithmically() {
        let o = IndexOptions::default();
        assert_eq!(o.short_levels_for(1), 1);
        assert_eq!(o.short_levels_for(7), 3);
        assert_eq!(o.short_levels_for(8), 4);
        assert_eq!(o.short_levels_for(1 << 20), 21);
        assert_eq!(o.ratio(), 2);
    }

    #[test]
    fn explicit_overrides() {
        let o = IndexOptions {
            max_short_level: Some(12),
            long_level_ratio: Some(4),
            ..Default::default()
        };
        assert_eq!(o.short_levels_for(10), 12);
        assert_eq!(o.ratio(), 4);
        let o = IndexOptions {
            max_short_level: Some(0),
            long_level_ratio: Some(1),
            ..Default::default()
        };
        assert_eq!(o.short_levels_for(10), 1, "clamped to at least 1");
        assert_eq!(o.ratio(), 2, "clamped to at least 2");
    }
}
