//! Construction statistics (used by the Figure 9 experiments).

use ustr_uncertain::canon;

use std::time::Duration;

/// Statistics recorded while building an index.
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Positions in the source uncertain string (collection total for the
    /// listing index).
    pub source_len: usize,
    /// Length of the transformed deterministic text (separators included).
    pub transformed_len: usize,
    /// Number of maximal factors emitted by the transform.
    pub num_factors: usize,
    /// Wall-clock construction time.
    pub build_time: Duration,
    /// Approximate heap footprint of the finished index, in bytes.
    pub heap_bytes: usize,
}

impl BuildStats {
    /// Expansion ratio |X| / |S| (the space constant discussed in §8.7).
    pub fn expansion(&self) -> f64 {
        if self.source_len == 0 {
            0.0
        } else {
            self.transformed_len as f64 / self.source_len as f64
        }
    }

    /// Heap footprint in mebibytes.
    pub fn heap_mib(&self) -> f64 {
        canon::bytes_to_mib(self.heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = BuildStats {
            source_len: 100,
            transformed_len: 250,
            num_factors: 40,
            build_time: Duration::from_millis(5),
            heap_bytes: 2 * 1024 * 1024,
        };
        assert!((s.expansion() - 2.5).abs() < 1e-12);
        assert!((s.heap_mib() - 2.0).abs() < 1e-12);
        assert_eq!(BuildStats::default().expansion(), 0.0);
    }
}
