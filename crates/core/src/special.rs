//! The special-uncertain-string index (§4): the paper's core machinery in
//! its simplest setting — every text position is a distinct occurrence
//! position, so no transformation or duplicate elimination is needed.

use std::time::Instant;

use ustr_suffix::SuffixTree;
use ustr_uncertain::{canon, CorrelationSet, SpecialUncertainString};

use crate::{
    carray::CumulativeLogProb,
    error::{validate_query, Error},
    levels::{DedupStrategy, Levels},
    options::IndexOptions,
    result::QueryResult,
    snapshot::{CumState, SpecialIndexState, TreeState},
    stats::BuildStats,
};

/// Index over a [`SpecialUncertainString`] (Definition 1) supporting
/// arbitrary thresholds `τ ∈ (0, 1]` (no transform means no `τmin`
/// restriction).
///
/// Query cost: `O(m + occ)` for `m ≤ ⌈log₂ n⌉` (per-length RMQ levels),
/// `O(m · occ)`-flavoured for longer patterns (blocking scheme).
///
/// ```
/// use ustr_core::SpecialIndex;
/// use ustr_uncertain::SpecialUncertainString;
/// // Figure 5: X = (b,.4)(a,.7)(n,.5)(a,.8)(n,.9)(a,.6), query ("ana", 0.3).
/// let x = SpecialUncertainString::new(
///     b"banana".to_vec(),
///     vec![0.4, 0.7, 0.5, 0.8, 0.9, 0.6],
/// ).unwrap();
/// let idx = SpecialIndex::build(&x).unwrap();
/// assert_eq!(idx.query(b"ana", 0.3).unwrap().positions(), vec![3]);
/// assert_eq!(idx.query(b"ana", 0.2).unwrap().positions(), vec![1, 3]);
/// ```
pub struct SpecialIndex {
    special: SpecialUncertainString,
    correlations: CorrelationSet,
    tree: SuffixTree,
    cum: CumulativeLogProb,
    levels: Levels,
    /// Log-space slack added to the recursion threshold so upward
    /// correlation adjustments cannot prune true matches (§4.1).
    boost_log: f64,
    stats: BuildStats,
}

impl SpecialIndex {
    /// Builds the index without correlations.
    pub fn build(special: &SpecialUncertainString) -> Result<Self, Error> {
        Self::build_with(special, CorrelationSet::new(), &IndexOptions::default())
    }

    /// Builds with correlations and explicit options.
    pub fn build_with(
        special: &SpecialUncertainString,
        correlations: CorrelationSet,
        options: &IndexOptions,
    ) -> Result<Self, Error> {
        let start = Instant::now();
        let tree = SuffixTree::build(special.chars().to_vec());
        let cum = CumulativeLogProb::new(special.probs(), |i| special.char_at(i) == 0);
        let max_short = options.short_levels_for(tree.num_slots());
        let levels = Levels::build(
            &tree,
            &cum,
            max_short,
            options.ratio(),
            !options.disable_long_levels,
            &DedupStrategy::None,
        );
        let boost_log = correlation_boost(special, &correlations);
        let mut stats = BuildStats {
            source_len: special.len(),
            transformed_len: special.len(),
            num_factors: 1,
            build_time: start.elapsed(),
            heap_bytes: 0,
        };
        let mut idx = Self {
            special: special.clone(),
            correlations,
            tree,
            cum,
            levels,
            boost_log,
            stats: BuildStats::default(),
        };
        stats.heap_bytes = idx.heap_size();
        idx.stats = stats;
        Ok(idx)
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The indexed string.
    pub fn special(&self) -> &SpecialUncertainString {
        &self.special
    }

    /// Decomposes the index into its persistence-ready snapshot state (see
    /// [`crate::snapshot`]).
    pub fn to_snapshot(&self) -> SpecialIndexState {
        let (text, sa, lcp) = self.tree.to_parts();
        let (prefix, sentinels) = self.cum.to_parts();
        SpecialIndexState {
            special: self.special.clone(),
            correlations: self.correlations.iter().cloned().collect(),
            tree: TreeState { text, sa, lcp },
            cum: CumState { prefix, sentinels },
            levels: self.levels.to_parts(),
            stats: self.stats.clone(),
        }
    }

    /// Reassembles an index from snapshot state; the result answers every
    /// query identically to the original. Fails with
    /// [`Error::InvalidSnapshot`] on structurally inconsistent state.
    pub fn from_snapshot(state: SpecialIndexState) -> Result<Self, Error> {
        use crate::snapshot::{invalid, validate_tree_state};
        validate_tree_state(&state.tree)?;
        if state.tree.text != state.special.chars() {
            return Err(invalid("tree text does not match the indexed string"));
        }
        let mut correlations = CorrelationSet::new();
        for corr in state.correlations {
            correlations.add(corr).map_err(Error::Model)?;
        }
        let tree = SuffixTree::from_parts(state.tree.text, state.tree.sa, state.tree.lcp);
        let cum = CumulativeLogProb::from_parts(state.cum.prefix, state.cum.sentinels)
            .map_err(invalid)?;
        if cum.len() != tree.text_len() {
            return Err(invalid("cumulative array length does not match text"));
        }
        let levels = Levels::from_parts(state.levels, &tree, &cum)?;
        // Derived, never trusted from the snapshot: a too-small boost would
        // silently prune true matches under correlation uplift.
        let boost_log = correlation_boost(&state.special, &correlations);
        Ok(Self {
            special: state.special,
            correlations,
            tree,
            cum,
            levels,
            boost_log,
            stats: state.stats,
        })
    }

    /// All positions where `pattern` matches with probability ≥ `tau`.
    pub fn query(&self, pattern: &[u8], tau: f64) -> Result<QueryResult, Error> {
        validate_query(pattern, tau, 0.0)?;
        let m = pattern.len();
        let Some((l, r)) = self.tree.suffix_range(pattern) else {
            return Ok(QueryResult::default());
        };
        let log_tau = canon::ln(tau);
        // Candidates come back with their *stored* window log-probability.
        let candidates = if m <= self.levels.max_short() {
            self.levels
                .report_short(m, l, r, log_tau - self.boost_log, &self.tree, &self.cum)
        } else {
            self.levels
                .report_long(m, l, r, log_tau - self.boost_log, &self.tree, &self.cum)
        };
        let mut hits = Vec::with_capacity(candidates.len());
        for (slot, stored) in candidates {
            let pos = self.tree.sa(slot);
            let exact = if self.correlations.is_empty() {
                canon::exp(stored)
            } else {
                self.special.window_prob_with(&self.correlations, pos, m)
            };
            if exact >= tau - ustr_uncertain::PROB_EPS {
                hits.push((pos, exact));
            }
        }
        Ok(QueryResult::from_hits(hits))
    }

    /// The `k` most probable occurrences of `pattern`, ranked descending.
    /// Without correlations this is the exact top-k; with correlations the
    /// ranking key is the stored probability (returned probabilities are
    /// exact).
    pub fn query_top_k(&self, pattern: &[u8], k: usize) -> Result<Vec<(usize, f64)>, Error> {
        crate::error::validate_pattern(pattern)?;
        let Some((l, r)) = self.tree.suffix_range(pattern) else {
            return Ok(Vec::new());
        };
        let m = pattern.len();
        let hits = crate::topk::top_k_for_range(
            &self.tree,
            &self.cum,
            &self.levels,
            m,
            l,
            r,
            k,
            f64::MIN,
            |slot| Some(self.tree.sa(slot)),
        );
        let mut out: Vec<(usize, f64)> = hits
            .into_iter()
            .map(|(pos, v)| {
                let p = if self.correlations.is_empty() {
                    canon::exp(v)
                } else {
                    self.special.window_prob_with(&self.correlations, pos, m)
                };
                (pos, p)
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        Ok(out)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.tree.heap_size()
            + self.cum.heap_size()
            + self.levels.heap_size()
            + self.special.len() * (1 + std::mem::size_of::<f64>())
    }
}

/// Log-space slack for the reporting threshold: correlations can raise a
/// window's probability above the stored product (stored probabilities play
/// the paper's pr+ role), so the recursion threshold is relaxed by the total
/// possible uplift; exact verification filters afterwards.
fn correlation_boost(special: &SpecialUncertainString, correlations: &CorrelationSet) -> f64 {
    let mut boost_log = 0.0f64;
    for corr in correlations.iter() {
        let pos = corr.subject_pos;
        if special.chars().get(pos) == Some(&corr.subject_char) {
            let stored = special.prob_at(pos);
            let uplift = (canon::ln(corr.max_prob()) - canon::ln(stored)).max(0.0);
            boost_log += uplift;
        }
    }
    boost_log
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustr_uncertain::Correlation;

    fn banana() -> SpecialUncertainString {
        SpecialUncertainString::new(b"banana".to_vec(), vec![0.4, 0.7, 0.5, 0.8, 0.9, 0.6]).unwrap()
    }

    #[test]
    fn figure_5_query() {
        let idx = SpecialIndex::build(&banana()).unwrap();
        let r = idx.query(b"ana", 0.3).unwrap();
        assert_eq!(r.positions(), vec![3]);
        assert!((r.max_probability() - 0.432).abs() < 1e-9);
    }

    #[test]
    fn all_pattern_lengths_match_brute_force() {
        let x = banana();
        let idx = SpecialIndex::build(&x).unwrap();
        let text = b"banana";
        for m in 1..=6 {
            for start in 0..=6 - m {
                let pattern = &text[start..start + m];
                for tau in [0.05, 0.1, 0.3, 0.5, 0.9] {
                    let got = idx.query(pattern, tau).unwrap();
                    let expected: Vec<usize> = (0..=6 - m)
                        .filter(|&i| {
                            &text[i..i + m] == pattern && x.window_prob(i, m) >= tau - 1e-12
                        })
                        .collect();
                    assert_eq!(got.positions(), expected, "pattern {pattern:?} tau {tau}");
                }
            }
        }
    }

    #[test]
    fn long_patterns_use_blocking_path() {
        // 40 characters forces patterns beyond ceil(log2(41)) = 6.
        let chars: Vec<u8> = b"abcabcabcabcabcabcabcabcabcabcabcabcabca".to_vec();
        let probs = vec![0.95f64; 40];
        let x = SpecialUncertainString::new(chars.clone(), probs).unwrap();
        let idx = SpecialIndex::build(&x).unwrap();
        let pattern = &chars[0..12]; // "abcabcabcabc"
        let got = idx.query(pattern, 0.5).unwrap();
        let expected: Vec<usize> = (0..=40 - 12)
            .filter(|&i| chars[i..i + 12] == pattern[..] && 0.95f64.powi(12) >= 0.5)
            .collect();
        assert_eq!(got.positions(), expected);
    }

    #[test]
    fn correlation_uplift_is_not_pruned() {
        // Stored probability .2 at the subject, but pr+ = .9: the stored
        // window value underestimates; without the boost the recursion would
        // prune the true match at tau = .5.
        let x = SpecialUncertainString::new(b"eqz".to_vec(), vec![1.0, 1.0, 0.2]).unwrap();
        let mut corrs = CorrelationSet::new();
        corrs
            .add(Correlation {
                subject_pos: 2,
                subject_char: b'z',
                cond_pos: 0,
                cond_char: b'e',
                p_present: 0.9,
                p_absent: 0.1,
            })
            .unwrap();
        let idx = SpecialIndex::build_with(&x, corrs, &IndexOptions::default()).unwrap();
        let r = idx.query(b"eqz", 0.5).unwrap();
        assert_eq!(r.positions(), vec![0]);
        assert!((r.hits()[0].1 - 0.9).abs() < 1e-9);
        // And the downward adjustment filters correctly: window "qz" uses the
        // marginal 1.0*.9 + 0*.1 = .9 (e always present).
        let r = idx.query(b"qz", 0.95).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn query_validation() {
        let idx = SpecialIndex::build(&banana()).unwrap();
        assert!(matches!(idx.query(b"", 0.5), Err(Error::EmptyPattern)));
        assert!(matches!(
            idx.query(b"a\0", 0.5),
            Err(Error::PatternContainsSentinel)
        ));
        assert!(matches!(
            idx.query(b"a", 0.0),
            Err(Error::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn missing_pattern_is_empty() {
        let idx = SpecialIndex::build(&banana()).unwrap();
        assert!(idx.query(b"xyz", 0.1).unwrap().is_empty());
        assert!(idx.query(b"bananaX", 0.1).unwrap().is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let idx = SpecialIndex::build(&banana()).unwrap();
        assert_eq!(idx.stats().source_len, 6);
        assert!(idx.stats().heap_bytes > 0);
        assert!(idx.heap_size() > 0);
    }
}
