//! Per-pattern-length RMQ levels (`C_i` + `RMQ_i`) with duplicate
//! elimination, plus the long-pattern blocking scheme (§4.2, §5.2).
//!
//! For every pattern length `i ≤ L = ⌈log₂ N⌉` the paper materialises
//! `C_i[j]` = probability of the length-`i` prefix of the `j`-th suffix,
//! builds an RMQ over it, and discards the array, re-deriving values from
//! the cumulative array `C`. [`Levels`] does the same with
//! [`SampledRmq`] structures whose accessors read
//! [`CumulativeLogProb::window`].
//!
//! Duplicate elimination (§5.2/§6): within each level-`i` locus partition
//! (maximal runs of suffix-array slots whose pairwise LCP is ≥ `i`),
//! duplicate entries are masked to −∞ so each distinct source position (or
//! document) is reported at most once. The suffix range of any length-`i`
//! pattern coincides with exactly one partition, so masked levels report
//! every distinct result exactly once.
//!
//! Long patterns (`m > L`): materialising per-length block maxima for every
//! `i ∈ [log n, n]`, as §4.2 describes, costs Θ(n²) construction time; we
//! build the blocking levels at geometric lengths `L, 2L, 4L, …` instead.
//! Prefix probabilities are non-increasing in length, so a level-`i` value
//! (`i ≤ m`) upper-bounds every length-`m` window in its block — a sound
//! pruning filter; survivors are verified against `C` exactly. This keeps
//! the paper's `O(m · occ)` long-pattern flavour at O(N log N) build cost.

use std::collections::HashMap;

use ustr_rmq::{Direction, SampledRmq, ThresholdReporter};
use ustr_suffix::SuffixTree;

use crate::carray::CumulativeLogProb;

/// Compact bit vector for per-level duplicate masks.
#[derive(Debug, Clone)]
struct BitVec {
    words: Vec<u64>,
}

impl BitVec {
    fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn heap_size(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// How duplicate entries are eliminated inside each locus partition.
pub enum DedupStrategy<'a> {
    /// No masking (the special index: every slot is a distinct position).
    None,
    /// Mask slots whose source key repeats within the partition (general
    /// substring index: key = original string position).
    BySource(&'a dyn Fn(usize) -> Option<u32>),
    /// Keep only the maximum-value slot per key per partition (listing
    /// index: key = document id, value drives `Rel_max`).
    ByKeyMax(&'a dyn Fn(usize) -> Option<u32>),
}

struct ShortLevel {
    rmq: SampledRmq,
    mask: BitVec,
}

struct LongLevel {
    /// Prefix length this level filters with.
    len: usize,
    /// Block RMQ with block size = `len` (one champion per block, as in the
    /// paper's `PB_i` arrays).
    rmq: SampledRmq,
}

/// The per-length RMQ levels of an index.
pub struct Levels {
    max_short: usize,
    short: Vec<ShortLevel>,
    long: Vec<LongLevel>,
}

/// Persistent representation of one short level (see [`Levels::to_parts`]).
#[derive(Debug, Clone)]
pub struct ShortLevelParts {
    /// Duplicate-elimination mask, 64 slots per word.
    pub mask_words: Vec<u64>,
    /// RMQ sampling block size.
    pub block_size: usize,
    /// Per-block champion indices.
    pub champions: Vec<u32>,
}

/// Persistent representation of one long (blocking-scheme) level.
#[derive(Debug, Clone)]
pub struct LongLevelParts {
    /// Filter length of this level.
    pub len: usize,
    /// RMQ sampling block size.
    pub block_size: usize,
    /// Per-block champion indices.
    pub champions: Vec<u32>,
}

/// Persistent representation of all RMQ levels of an index.
#[derive(Debug, Clone)]
pub struct LevelsParts {
    /// Largest pattern length served by the short levels.
    pub max_short: usize,
    /// Short levels, in pattern-length order (`1..=max_short`).
    pub short: Vec<ShortLevelParts>,
    /// Long levels, in increasing filter-length order.
    pub long: Vec<LongLevelParts>,
}

impl Levels {
    /// Builds all levels for the suffix `tree` over probabilities `cum`.
    ///
    /// `slots` = `tree.num_slots()`; slot 0 (the virtual terminator) is
    /// always masked. `max_short` short levels are built (lengths
    /// `1..=max_short`); long levels at `max_short·ratioᵏ` while ≤ text
    /// length, unless `enable_long` is false.
    pub fn build(
        tree: &SuffixTree,
        cum: &CumulativeLogProb,
        max_short: usize,
        ratio: usize,
        enable_long: bool,
        dedup: &DedupStrategy<'_>,
    ) -> Self {
        let slots = tree.num_slots();

        let mut short = Vec::with_capacity(max_short);
        for i in 1..=max_short {
            let mask = build_mask(tree, cum, i, dedup);
            let accessor = |j: usize| {
                if mask.get(j) {
                    f64::NEG_INFINITY
                } else {
                    cum.window(tree.sa(j), i)
                }
            };
            let rmq = SampledRmq::new(slots, Direction::Max, &accessor);
            short.push(ShortLevel { rmq, mask });
        }

        let mut long = Vec::new();
        if enable_long {
            let mut len = max_short;
            while len <= cum.len().max(1) {
                let accessor = |j: usize| cum.window(tree.sa(j), len);
                let rmq = SampledRmq::with_block_size(slots, len.max(1), Direction::Max, &accessor);
                long.push(LongLevel { len, rmq });
                match len.checked_mul(ratio) {
                    Some(next) => len = next,
                    None => break,
                }
            }
        }

        Self {
            max_short,
            short,
            long,
        }
    }

    /// Decomposes all levels into the persistent representation accepted by
    /// [`Levels::from_parts`]: per short level the duplicate-mask words and
    /// RMQ champion indices, per long level its filter length and champions.
    /// Champion *values* are never stored — they are re-derived from the
    /// cumulative array on reload, exactly as queries re-derive them.
    pub fn to_parts(&self) -> LevelsParts {
        LevelsParts {
            max_short: self.max_short,
            short: self
                .short
                .iter()
                .map(|s| ShortLevelParts {
                    mask_words: s.mask.words.clone(),
                    block_size: s.rmq.block_size(),
                    champions: s.rmq.champions().to_vec(),
                })
                .collect(),
            long: self
                .long
                .iter()
                .map(|l| LongLevelParts {
                    len: l.len,
                    block_size: l.rmq.block_size(),
                    champions: l.rmq.champions().to_vec(),
                })
                .collect(),
        }
    }

    /// Reassembles levels from parts produced by [`Levels::to_parts`],
    /// re-deriving all RMQ champion values through `tree` and `cum` (which
    /// must be the reloaded structures of the same index). Fails with
    /// [`crate::Error::InvalidSnapshot`] on structurally inconsistent parts.
    pub fn from_parts(
        parts: LevelsParts,
        tree: &SuffixTree,
        cum: &CumulativeLogProb,
    ) -> Result<Self, crate::error::Error> {
        let invalid = |detail: &str| crate::error::Error::InvalidSnapshot {
            detail: detail.to_string(),
        };
        let slots = tree.num_slots();
        if parts.short.len() != parts.max_short {
            return Err(invalid("short level count does not match max_short"));
        }
        let mut short = Vec::with_capacity(parts.short.len());
        for (idx, level) in parts.short.into_iter().enumerate() {
            let i = idx + 1; // pattern length served by this level
            if level.mask_words.len() != slots.div_ceil(64) {
                return Err(invalid("mask word count does not match slot count"));
            }
            let mask = BitVec {
                words: level.mask_words,
            };
            let accessor = |j: usize| {
                if mask.get(j) {
                    f64::NEG_INFINITY
                } else {
                    cum.window(tree.sa(j), i)
                }
            };
            let rmq = SampledRmq::from_parts(
                slots,
                level.block_size,
                Direction::Max,
                level.champions,
                &accessor,
            )
            .map_err(invalid)?;
            short.push(ShortLevel { rmq, mask });
        }
        let mut long = Vec::with_capacity(parts.long.len());
        let mut prev_len = 0usize;
        for level in parts.long {
            if level.len <= prev_len {
                return Err(invalid("long level lengths must be strictly increasing"));
            }
            prev_len = level.len;
            let len = level.len;
            let accessor = |j: usize| cum.window(tree.sa(j), len);
            let rmq = SampledRmq::from_parts(
                slots,
                level.block_size,
                Direction::Max,
                level.champions,
                &accessor,
            )
            .map_err(invalid)?;
            long.push(LongLevel { len, rmq });
        }
        Ok(Self {
            max_short: parts.max_short,
            short,
            long,
        })
    }

    /// Largest pattern length served by the short levels.
    pub fn max_short(&self) -> usize {
        self.max_short
    }

    /// Returns `true` when blocking levels exist for long patterns.
    pub fn has_long(&self) -> bool {
        !self.long.is_empty()
    }

    /// Short-pattern reporting (Algorithm 2/4): all unmasked slots in
    /// `[l, r]` whose level-`m` value is ≥ `log_tau`, extreme-first. Requires
    /// `1 ≤ m ≤ max_short`.
    pub fn report_short(
        &self,
        m: usize,
        l: usize,
        r: usize,
        log_tau: f64,
        tree: &SuffixTree,
        cum: &CumulativeLogProb,
    ) -> Vec<(usize, f64)> {
        debug_assert!(m >= 1 && m <= self.max_short);
        let level = &self.short[m - 1];
        let accessor = |j: usize| {
            if level.mask.get(j) {
                f64::NEG_INFINITY
            } else {
                cum.window(tree.sa(j), m)
            }
        };
        ThresholdReporter::new(
            l,
            r,
            log_tau - ustr_uncertain::PROB_EPS,
            Direction::Max,
            |a, b| level.rmq.query_with(a, b, &accessor),
            accessor,
        )
        .collect()
    }

    /// Long-pattern reporting via the blocking scheme: slots in `[l, r]`
    /// whose *length-m* window value is ≥ `log_tau`, pruned by the largest
    /// level with `len ≤ m`. Returned values are the exact length-`m`
    /// window log-probabilities. Duplicate sources are *not* eliminated —
    /// the caller aggregates.
    pub fn report_long(
        &self,
        m: usize,
        l: usize,
        r: usize,
        log_tau: f64,
        tree: &SuffixTree,
        cum: &CumulativeLogProb,
    ) -> Vec<(usize, f64)> {
        let Some(level) = self.long.iter().rev().find(|lvl| lvl.len <= m) else {
            // No filter level available: scan the whole range.
            return scan_range(m, l, r, log_tau, tree, cum);
        };
        let filter_len = level.len;
        let filter = |j: usize| cum.window(tree.sa(j), filter_len);
        let threshold = log_tau - ustr_uncertain::PROB_EPS;
        let mut out = Vec::new();
        // Enumerate slots whose filter value passes; verify each at length m.
        let reporter = ThresholdReporter::new(
            l,
            r,
            threshold,
            Direction::Max,
            |a, b| level.rmq.query_with(a, b, &filter),
            filter,
        );
        for (slot, _upper) in reporter {
            let exact = cum.window(tree.sa(slot), m);
            if exact >= threshold {
                out.push((slot, exact));
            }
        }
        out
    }

    /// Accessor pair for a short level: `(range-argmax query, value)`.
    /// Used by the best-first top-k driver.
    pub(crate) fn short_accessors<'a>(
        &'a self,
        m: usize,
        tree: &'a SuffixTree,
        cum: &'a CumulativeLogProb,
    ) -> (
        impl Fn(usize, usize) -> usize + 'a,
        impl Fn(usize) -> f64 + Copy + 'a,
    ) {
        debug_assert!(m >= 1 && m <= self.max_short);
        let level = &self.short[m - 1];
        let value = move |j: usize| {
            if level.mask.get(j) {
                f64::NEG_INFINITY
            } else {
                cum.window(tree.sa(j), m)
            }
        };
        let query = move |a: usize, b: usize| level.rmq.query_with(a, b, &value);
        (query, value)
    }

    /// Accessor triple for the best long level ≤ `m`:
    /// `(filter length, range-argmax query, upper-bound value)`.
    #[allow(clippy::type_complexity)] // impl-trait tuple; aliases cannot name it
    pub(crate) fn long_accessors<'a>(
        &'a self,
        m: usize,
        tree: &'a SuffixTree,
        cum: &'a CumulativeLogProb,
    ) -> Option<(
        usize,
        impl Fn(usize, usize) -> usize + 'a,
        impl Fn(usize) -> f64 + Copy + 'a,
    )> {
        let level = self.long.iter().rev().find(|lvl| lvl.len <= m)?;
        let len = level.len;
        let value = move |j: usize| cum.window(tree.sa(j), len);
        let query = move |a: usize, b: usize| level.rmq.query_with(a, b, &value);
        Some((len, query, value))
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.short
            .iter()
            .map(|s| s.rmq.heap_size() + s.mask.heap_size())
            .sum::<usize>()
            + self.long.iter().map(|l| l.rmq.heap_size()).sum::<usize>()
    }
}

/// Exhaustive fallback when no blocking level applies.
fn scan_range(
    m: usize,
    l: usize,
    r: usize,
    log_tau: f64,
    tree: &SuffixTree,
    cum: &CumulativeLogProb,
) -> Vec<(usize, f64)> {
    let threshold = log_tau - ustr_uncertain::PROB_EPS;
    (l..=r)
        .filter_map(|j| {
            let v = cum.window(tree.sa(j), m);
            (v >= threshold).then_some((j, v))
        })
        .collect()
}

/// Builds the duplicate mask for one level.
fn build_mask(
    tree: &SuffixTree,
    cum: &CumulativeLogProb,
    level: usize,
    dedup: &DedupStrategy<'_>,
) -> BitVec {
    let slots = tree.num_slots();
    let mut mask = BitVec::new(slots);
    if slots > 0 {
        mask.set(0); // virtual-terminator slot never matches
    }
    match dedup {
        DedupStrategy::None => {}
        DedupStrategy::BySource(key_of) => {
            // Stamp-based "seen" set avoids clearing a hash set per partition.
            let mut seen: HashMap<u32, u32> = HashMap::new();
            let mut partition = 0u32;
            for j in 1..slots {
                if tree.slot_lcp(j) < level {
                    partition += 1;
                }
                let valid = cum.window(tree.sa(j), level) > f64::NEG_INFINITY;
                match key_of(j) {
                    Some(key) if valid => {
                        if seen.insert(key, partition) == Some(partition) {
                            mask.set(j);
                        }
                    }
                    _ => mask.set(j),
                }
            }
        }
        DedupStrategy::ByKeyMax(key_of) => {
            let mut best: HashMap<u32, (usize, f64)> = HashMap::new();
            let mut members: Vec<usize> = Vec::new();
            let flush = |best: &mut HashMap<u32, (usize, f64)>,
                         members: &mut Vec<usize>,
                         mask: &mut BitVec| {
                for &j in members.iter() {
                    mask.set(j);
                }
                for (_, &(winner, _)) in best.iter() {
                    // Clear the winner bit again.
                    mask.words[winner / 64] &= !(1u64 << (winner % 64));
                }
                best.clear();
                members.clear();
            };
            for j in 1..slots {
                if tree.slot_lcp(j) < level {
                    flush(&mut best, &mut members, &mut mask);
                }
                let value = cum.window(tree.sa(j), level);
                match key_of(j) {
                    Some(key) if value > f64::NEG_INFINITY => {
                        members.push(j);
                        match best.get(&key) {
                            Some(&(_, v)) if v >= value => {}
                            _ => {
                                best.insert(key, (j, value));
                            }
                        }
                    }
                    _ => mask.set(j),
                }
            }
            flush(&mut best, &mut members, &mut mask);
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(text: &[u8], probs: &[f64]) -> (SuffixTree, CumulativeLogProb) {
        let tree = SuffixTree::build(text.to_vec());
        let sentinel: Vec<bool> = text.iter().map(|&b| b == 0).collect();
        let cum = CumulativeLogProb::new(probs, |i| sentinel[i]);
        (tree, cum)
    }

    #[test]
    fn short_report_matches_brute_force() {
        let text = b"banana";
        let probs = [0.4, 0.7, 0.5, 0.8, 0.9, 0.6];
        let (tree, cum) = setup(text, &probs);
        let levels = Levels::build(&tree, &cum, 3, 2, true, &DedupStrategy::None);
        // Level 3 over the suffix range of "ana" with tau = 0.3: Figure 5
        // reports position 3 only (prob .432); position 1 has .28.
        let (l, r) = tree.suffix_range(b"ana").unwrap();
        let hits = levels.report_short(3, l, r, 0.3f64.ln(), &tree, &cum);
        let positions: Vec<usize> = hits.iter().map(|&(j, _)| tree.sa(j)).collect();
        assert_eq!(positions, vec![3]);
        // First hit is the maximum.
        assert!((hits[0].1.exp() - 0.432).abs() < 1e-9);
        // Lower threshold reports both.
        let hits = levels.report_short(3, l, r, 0.2f64.ln(), &tree, &cum);
        let mut positions: Vec<usize> = hits.iter().map(|&(j, _)| tree.sa(j)).collect();
        positions.sort_unstable();
        assert_eq!(positions, vec![1, 3]);
    }

    #[test]
    fn long_report_verifies_exact_length() {
        let text = b"abababab";
        let probs = [0.9; 8];
        let (tree, cum) = setup(text, &probs);
        let levels = Levels::build(&tree, &cum, 2, 2, true, &DedupStrategy::None);
        assert!(levels.has_long());
        let (l, r) = tree.suffix_range(b"abab").unwrap();
        // length 4 at 0.9^4 = .6561; threshold .6 keeps all three occurrences
        let hits = levels.report_long(4, l, r, 0.6f64.ln(), &tree, &cum);
        let mut positions: Vec<usize> = hits.iter().map(|&(j, _)| tree.sa(j)).collect();
        positions.sort_unstable();
        assert_eq!(positions, vec![0, 2, 4]);
        for &(_, v) in &hits {
            assert!((v.exp() - 0.9f64.powi(4)).abs() < 1e-9);
        }
        // Threshold .66 rejects (0.6561 < 0.66).
        let hits = levels.report_long(4, l, r, 0.66f64.ln(), &tree, &cum);
        assert!(hits.is_empty());
    }

    #[test]
    fn dedup_by_source_masks_repeats_within_partition() {
        // Text "AB\0AB\0" where both "AB" factors map to source position 7.
        let text = b"AB\0AB\0";
        let probs = [0.5, 0.5, 1.0, 0.5, 0.5, 1.0];
        let (tree, cum) = setup(text, &probs);
        let key = |j: usize| {
            let p = tree.sa(j);
            if p < 6 && text[p] != 0 {
                Some(7u32) // every real slot pretends to be source 7
            } else {
                None
            }
        };
        let dedup = DedupStrategy::BySource(&key);
        let levels = Levels::build(&tree, &cum, 2, 2, false, &dedup);
        let (l, r) = tree.suffix_range(b"AB").unwrap();
        let hits = levels.report_short(2, l, r, 0.2f64.ln(), &tree, &cum);
        assert_eq!(hits.len(), 1, "duplicate source reported once");
    }

    #[test]
    fn dedup_by_key_max_keeps_best_entry() {
        // Two "AB" occurrences with different probabilities, same document.
        let text = b"AB\0AB\0";
        let probs = [0.5, 0.5, 1.0, 0.9, 0.9, 1.0];
        let (tree, cum) = setup(text, &probs);
        let key = |j: usize| {
            let p = tree.sa(j);
            (p < 6 && text[p] != 0).then_some(0u32) // one document
        };
        let dedup = DedupStrategy::ByKeyMax(&key);
        let levels = Levels::build(&tree, &cum, 2, 2, false, &dedup);
        let (l, r) = tree.suffix_range(b"AB").unwrap();
        let hits = levels.report_short(2, l, r, 0.1f64.ln(), &tree, &cum);
        assert_eq!(hits.len(), 1);
        assert!((hits[0].1.exp() - 0.81).abs() < 1e-9, "max entry kept");
    }

    #[test]
    fn sentinel_windows_never_report() {
        let text = b"A\0B";
        let probs = [0.9, 1.0, 0.9];
        let (tree, cum) = setup(text, &probs);
        let levels = Levels::build(&tree, &cum, 2, 2, false, &DedupStrategy::None);
        // "A\0" would cross the separator: the window is -inf at level 2.
        let (l, r) = tree.suffix_range(b"A").unwrap();
        let hits = levels.report_short(2, l, r, 0.001f64.ln(), &tree, &cum);
        assert!(hits.is_empty());
    }

    #[test]
    fn report_long_without_levels_falls_back_to_scan() {
        let text = b"aaaa";
        let probs = [0.9; 4];
        let (tree, cum) = setup(text, &probs);
        let levels = Levels::build(&tree, &cum, 1, 2, false, &DedupStrategy::None);
        assert!(!levels.has_long());
        let (l, r) = tree.suffix_range(b"aa").unwrap();
        let hits = levels.report_long(2, l, r, 0.5f64.ln(), &tree, &cum);
        assert_eq!(hits.len(), 3);
    }
}
