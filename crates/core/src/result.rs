//! Query result container.

/// Result of a substring-search query: occurrence positions with their
/// occurrence probabilities, sorted by position.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    hits: Vec<(usize, f64)>,
}

impl QueryResult {
    /// Builds from `(position, probability)` pairs; sorts by position.
    pub(crate) fn from_hits(mut hits: Vec<(usize, f64)>) -> Self {
        hits.sort_unstable_by_key(|&(pos, _)| pos);
        Self { hits }
    }

    /// The `(position, probability)` pairs, sorted by position.
    pub fn hits(&self) -> &[(usize, f64)] {
        &self.hits
    }

    /// Consumes the result, returning the sorted `(position, probability)`
    /// pairs without copying.
    pub fn into_hits(self) -> Vec<(usize, f64)> {
        self.hits
    }

    /// The occurrence positions, sorted ascending.
    pub fn positions(&self) -> Vec<usize> {
        self.hits.iter().map(|&(p, _)| p).collect()
    }

    /// Number of occurrences.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Returns `true` when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The maximum occurrence probability, or 0 when empty.
    pub fn max_probability(&self) -> f64 {
        self.hits.iter().map(|&(_, p)| p).fold(0.0, f64::max)
    }

    /// Iterates over `(position, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, f64)> {
        self.hits.iter()
    }
}

impl IntoIterator for QueryResult {
    type Item = (usize, f64);
    type IntoIter = std::vec::IntoIter<(usize, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.hits.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_by_position() {
        let r = QueryResult::from_hits(vec![(5, 0.2), (1, 0.9), (3, 0.5)]);
        assert_eq!(r.positions(), vec![1, 3, 5]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!((r.max_probability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_result() {
        let r = QueryResult::default();
        assert!(r.is_empty());
        assert_eq!(r.max_probability(), 0.0);
        assert_eq!(r.into_iter().count(), 0);
    }
}
