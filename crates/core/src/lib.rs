//! The probabilistic threshold indexes of Thankachan, Patil, Shah, Biswas —
//! *"Probabilistic Threshold Indexing for Uncertain Strings"* (EDBT 2016).
//!
//! Four indexes over character-level uncertain strings, all parameterised by
//! a construction-time threshold `τmin` and answering queries for any
//! `τ ≥ τmin`:
//!
//! | Type | Paper | Problem | Service query mode |
//! |---|---|---|---|
//! | [`SpecialIndex`] | §4 | substring search in a *special* uncertain string (one probabilistic character per position) | — |
//! | [`Index`] | §5 | substring search in a general uncertain string | `Threshold`, `TopK` |
//! | [`ListingIndex`] | §6 | string listing from an uncertain collection, with [`RelMetric`] relevance | `Listing` |
//! | [`ApproxIndex`] | §7 | approximate substring search with additive error ε | `Approx` |
//!
//! Every index type — [`SpecialIndex`], [`Index`], [`ListingIndex`], and
//! [`ApproxIndex`] — exposes a `to_snapshot` / `from_snapshot` pair over the
//! plain-data state structs in [`snapshot`]: the build-once/serve-forever
//! persistence layer. The byte encoding (magic, format version, checksum)
//! lives in the `ustr-store` crate (which also defines the single-file
//! *collection snapshot* container); the concurrent sharded serving engine
//! dispatching all four query modes over built or loaded indexes lives in
//! `ustr-service`.
//!
//! The machinery follows the paper: the uncertain string is reduced to a
//! deterministic text (via the Lemma-2 maximal-factor transform for general
//! strings), a suffix tree provides pattern loci, the cumulative probability
//! array `C` gives O(1) window probabilities, per-length arrays `C_i` with
//! range-maximum structures drive the *report-in-decreasing-probability*
//! recursion, per-level duplicate elimination keeps output time proportional
//! to distinct results, and a geometric blocking scheme covers patterns
//! longer than `log n`.

#![forbid(unsafe_code)]

mod approx;
mod carray;
mod error;
mod executor;
mod index;
mod levels;
mod listing;
mod options;
mod result;
pub mod snapshot;
mod special;
mod stats;
mod topk;

pub use approx::ApproxIndex;
pub use carray::CumulativeLogProb;
pub use error::{validate_pattern, validate_query, Error};
pub use executor::{canonical_hit_order, QueryExecutor};
pub use index::Index;
pub use levels::{DedupStrategy, Levels, LevelsParts, LongLevelParts, ShortLevelParts};
pub use listing::{ListingHit, ListingIndex, RelMetric};
pub use options::IndexOptions;
pub use result::QueryResult;
pub use snapshot::{
    ApproxIndexState, ApproxLinkState, CumState, IndexState, ListingIndexState, SpecialIndexState,
    TreeState,
};
pub use special::SpecialIndex;
pub use stats::BuildStats;
