//! Mutable uncertain-document collections served live.
//!
//! The paper's motivating data — ECG annotations, RFID event streams,
//! sequencing reads — is produced *continuously*, yet the static serving
//! stack (`ustr-service`) is frozen at build time. This crate layers a
//! mutable collection on the existing machinery:
//!
//! ```text
//!            insert/delete
//!                 │
//!                 ▼
//!        ┌─── WAL (fsync) ───┐          durability: every acknowledged
//!        │   wal.log         │          write survives a crash
//!        └────────┬──────────┘
//!                 ▼
//!        ┌─── memtable ──────┐          recent documents, served by the
//!        │  ScanIndex (exact │          `ustr-baseline` scanner — answers
//!        │  scans, O(1) add) │          bit-identical to a built index
//!        └────────┬──────────┘
//!                 │ seal (background thread, off the query path)
//!                 ▼
//!        ┌─── sealed segments┐          real `Index`/`ApproxIndex` per
//!        │ segment_<id>.coll │          document, built with the existing
//!        └────────┬──────────┘          constructors, persisted as `.coll`
//!                 │ compact (background)
//!                 ▼
//!        ┌─── one big segment┐          tombstoned documents dropped,
//!        │   + MANIFEST      │          small segments merged
//!        └───────────────────┘
//! ```
//!
//! Queries fan out over *sealed segments + sealing batches + memtable*
//! through the same typed [`QueryRequest`] dispatcher
//! ([`ustr_service::Engine`]) the static service uses, and merge
//! deterministically in ascending document order. Deletes are tombstones,
//! filtered when the per-batch segment snapshot is taken and physically
//! dropped at compaction. The per-mode LRU result cache is invalidated on
//! every mutation (cached answers describe a collection that no longer
//! exists).
//!
//! Because the memtable's scan executor and a built index satisfy the
//! [`ustr_core::QueryExecutor`] interchangeability contract, a
//! [`LiveService`] answers **byte-identically** to a static
//! [`ustr_service::QueryService`] rebuilt from scratch over the same live
//! documents — before, during, and after any seal or compaction.
//!
//! ```
//! use ustr_live::{LiveConfig, LiveService};
//! use ustr_uncertain::UncertainString;
//!
//! let dir = std::env::temp_dir().join("ustr_live_doc_example");
//! let _ = std::fs::remove_dir_all(&dir);
//! let live = LiveService::open(&dir, LiveConfig::default()).unwrap();
//! let id = live.insert(UncertainString::parse("A:.9,B:.1 | B | C").unwrap()).unwrap();
//! let hits = live.query(b"AB", 0.5).unwrap();
//! assert_eq!((hits[0].doc as u64, hits[0].hits[0].0), (id, 0));
//! live.delete(id).unwrap();
//! assert!(live.query(b"AB", 0.5).unwrap().is_empty());
//! drop(live);
//! let _ = std::fs::remove_dir_all(&dir);
//! ```

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ustr_baseline::ScanIndex;
use ustr_core::{ApproxIndex, Error, Index};
use ustr_obs::{Counter, Histogram, MetricsRegistry, MetricsSnapshot, Span};
use ustr_service::{
    lock_clean, wait_clean, DocExecutor, DocHits, Engine, ListingHit, QueryRequest, QueryResponse,
    Segment, SegmentSet, TopHit,
};
use ustr_store::{
    collection, wal, CollectionSection, RealIo, Snapshot, SnapshotKind, StoreError, StoreIo, WalOp,
    WalRecord, WalWriter,
};
use ustr_uncertain::{canon, UncertainString};

/// File name of the write-ahead log inside a live directory.
pub const WAL_FILE: &str = "wal.log";

/// File name of the manifest inside a live directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// File name of the advisory lock inside a live directory.
pub const LOCK_FILE: &str = "LOCK";

/// Tuning knobs for a [`LiveService`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Worker threads in the query pool (0 = one per available core).
    pub threads: usize,
    /// LRU result-cache capacity in request entries (0 disables caching;
    /// the cache is invalidated on every mutation either way).
    pub cache_capacity: usize,
    /// Construction threshold `τmin ∈ (0, 1]` for every document. Fixed at
    /// directory creation; reopening adopts the recorded value.
    pub tau_min: f64,
    /// When set, sealing additionally builds one ε-approximate index per
    /// document, making `Approx` requests ε-approximate for sealed
    /// documents (memtable documents always answer exactly, which
    /// trivially satisfies the sandwich). Fixed at directory creation.
    pub epsilon: Option<f64>,
    /// Memtable document count that triggers a background seal
    /// (0 = only seal on explicit [`LiveService::seal`]).
    pub seal_threshold: usize,
    /// Sealed-segment count that triggers background compaction
    /// (0 = only compact on explicit [`LiveService::compact`]).
    pub compact_min_segments: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_capacity: 1024,
            tau_min: 0.05,
            epsilon: None,
            seal_threshold: 64,
            compact_min_segments: 4,
        }
    }
}

/// Everything that can go wrong operating a live collection.
#[derive(Debug)]
pub enum LiveError {
    /// Index construction or query validation failed.
    Index(Error),
    /// The WAL, manifest, or a segment snapshot failed.
    Store(StoreError),
    /// Filesystem error outside the store layer.
    Io(std::io::Error),
    /// The configuration is invalid (e.g. `tau_min` outside `(0, 1]`).
    Config(String),
    /// A delete named a document id that is not live.
    UnknownDocument {
        /// The id that was not found.
        id: u64,
    },
    /// Another process holds the live directory open (advisory `LOCK`
    /// file): concurrent writers would interleave WAL appends and corrupt
    /// the log.
    DirectoryLocked {
        /// The contended live directory.
        dir: PathBuf,
    },
    /// A background seal or compaction failed earlier; the error is
    /// surfaced (sticky) on the next mutation.
    Background(String),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Index(e) => write!(f, "index error: {e}"),
            LiveError::Store(e) => write!(f, "store error: {e}"),
            LiveError::Io(e) => write!(f, "I/O error: {e}"),
            LiveError::Config(detail) => write!(f, "invalid live config: {detail}"),
            LiveError::UnknownDocument { id } => {
                write!(f, "document {id} is not live (never inserted or deleted)")
            }
            LiveError::DirectoryLocked { dir } => {
                write!(
                    f,
                    "live directory {} is in use by another process",
                    dir.display()
                )
            }
            LiveError::Background(detail) => {
                write!(f, "background maintenance failed: {detail}")
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<Error> for LiveError {
    fn from(e: Error) -> Self {
        LiveError::Index(e)
    }
}

impl From<StoreError> for LiveError {
    fn from(e: StoreError) -> Self {
        LiveError::Store(e)
    }
}

impl From<std::io::Error> for LiveError {
    fn from(e: std::io::Error) -> Self {
        LiveError::Io(e)
    }
}

/// One sealed segment: built per-document indexes plus the manifest
/// metadata tying local positions to stable document ids.
struct SealedSegment {
    meta: wal::SegmentMeta,
    /// `(stable_id, executor)` pairs in ascending stable-id order.
    docs: Vec<(u64, Arc<DocExecutor>)>,
}

/// A memtable batch handed to the background sealer. Still query-visible
/// (between the sealed segments and the current memtable) until the
/// segment install replaces it.
struct SealingBatch {
    batch_id: u64,
    docs: Vec<(u64, Arc<DocExecutor>)>,
    max_seq: u64,
}

/// Mutable state behind the service lock. The lock is held only for
/// snapshots, WAL appends, and installs — never while an index builds.
struct LiveState {
    wal: WalWriter,
    memtable: Vec<(u64, Arc<DocExecutor>)>,
    sealing: Vec<SealingBatch>,
    segments: Vec<Arc<SealedSegment>>,
    tombstones: BTreeSet<u64>,
    next_doc_id: u64,
    next_seq: u64,
    next_segment_id: u64,
    next_batch_id: u64,
    applied_seq: u64,
}

enum Job {
    Seal { batch_id: u64 },
    Compact,
    Shutdown,
}

/// Background-event telemetry, instance-scoped like the engine's (see
/// [`LiveService::metrics_snapshot`]). WAL metrics are recorded at the
/// append call sites so the storage layer stays telemetry-free.
struct LiveMetrics {
    registry: MetricsRegistry,
    inserts: Counter,
    deletes: Counter,
    wal_appends: Counter,
    wal_bytes: Counter,
    wal_fsync_us: Histogram,
    seals: Counter,
    sealed_docs: Counter,
    seal_us: Histogram,
    compactions: Counter,
    compact_drops: Counter,
    compact_us: Histogram,
    recovery_us: Histogram,
    recovered_records: Counter,
}

impl LiveMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        Self {
            inserts: registry.counter("live.inserts"),
            deletes: registry.counter("live.deletes"),
            wal_appends: registry.counter("live.wal.appends"),
            wal_bytes: registry.counter("live.wal.appended_bytes"),
            wal_fsync_us: registry.histogram("live.wal.append_fsync_us"),
            seals: registry.counter("live.seals"),
            sealed_docs: registry.counter("live.sealed_docs"),
            seal_us: registry.histogram("live.seal_us"),
            compactions: registry.counter("live.compactions"),
            compact_drops: registry.counter("live.compaction.docs_dropped"),
            compact_us: registry.histogram("live.compaction_us"),
            recovery_us: registry.histogram("live.recovery_us"),
            recovered_records: registry.counter("live.recovery.replayed_records"),
            registry,
        }
    }
}

/// Shared core between the front handle and the background worker.
struct Inner {
    dir: PathBuf,
    /// The filesystem seam every durable operation goes through. `RealIo`
    /// in production; `ustr-chaos` injects faulting implementations.
    io: Arc<dyn StoreIo>,
    tau_min: f64,
    epsilon: Option<f64>,
    compact_min_segments: usize,
    state: Mutex<LiveState>,
    engine: Engine,
    /// Bumped on every mutation **under the state lock**; query snapshots
    /// carry it as their cache epoch, so responses computed against a
    /// superseded state can never serve a later lookup (see
    /// [`SegmentSet::cache_epoch`]).
    generation: AtomicU64,
    /// Bumped (under the state lock) whenever the physical layout changes —
    /// mutations *and* seal/compact installs — and used to key the memoized
    /// view below. Installs do not bump `generation` because answers are
    /// identical across them (cached responses stay valid).
    structure_version: AtomicU64,
    /// The last built view, reused until `structure_version` moves so a
    /// read-heavy workload does not rebuild O(docs) segment vectors per
    /// batch.
    view_cache: Mutex<Option<(u64, LiveView)>>,
    /// Held (flock) for the service's lifetime to keep a second process
    /// from appending to the same WAL.
    _dir_lock: File,
    /// Outstanding background jobs, for [`LiveService::wait_idle`].
    pending_jobs: Mutex<usize>,
    idle: Condvar,
    background_error: Mutex<Option<String>>,
    metrics: LiveMetrics,
}

/// A point-in-time view of the live collection, in ascending document
/// order: sealed segments, then sealing batches, then the memtable —
/// tombstoned documents already filtered out. This is the live side of the
/// [`SegmentSet`] abstraction the shared dispatcher runs over.
#[derive(Clone)]
struct LiveView {
    segments: Vec<Arc<Segment>>,
    tau_min: f64,
    epoch: u64,
}

impl SegmentSet for LiveView {
    fn segments(&self) -> Vec<Arc<Segment>> {
        self.segments.clone()
    }

    fn tau_min(&self) -> f64 {
        self.tau_min
    }

    fn cache_epoch(&self) -> u64 {
        self.epoch
    }
}

impl Inner {
    /// Builds (or reuses) the query snapshot. The epoch and structure
    /// version are read under the state lock, so a view can never pair one
    /// collection state with another state's cache epoch.
    fn view(&self) -> LiveView {
        let st = lock_clean(&self.state);
        // ordering: Acquire pairs with the AcqRel bumps on mutation, so a view
        // built for version V observes every state change that produced V.
        let epoch = self.generation.load(Ordering::Acquire);
        let structure = self.structure_version.load(Ordering::Acquire);
        {
            let cache = lock_clean(&self.view_cache);
            if let Some((cached_structure, view)) = cache.as_ref() {
                if *cached_structure == structure {
                    return view.clone();
                }
            }
        }
        let mut segments = Vec::with_capacity(st.segments.len() + st.sealing.len() + 1);
        let alive = |id: &u64| !st.tombstones.contains(id);
        for seg in &st.segments {
            let docs: Vec<(usize, Arc<DocExecutor>)> = seg
                .docs
                .iter()
                .filter(|(id, _)| alive(id))
                .map(|(id, d)| (*id as usize, Arc::clone(d)))
                .collect();
            segments.push(Arc::new(Segment { docs }));
        }
        for batch in &st.sealing {
            let docs: Vec<(usize, Arc<DocExecutor>)> = batch
                .docs
                .iter()
                .filter(|(id, _)| alive(id))
                .map(|(id, d)| (*id as usize, Arc::clone(d)))
                .collect();
            segments.push(Arc::new(Segment { docs }));
        }
        let docs: Vec<(usize, Arc<DocExecutor>)> = st
            .memtable
            .iter()
            .filter(|(id, _)| alive(id))
            .map(|(id, d)| (*id as usize, Arc::clone(d)))
            .collect();
        segments.push(Arc::new(Segment { docs }));
        let view = LiveView {
            segments,
            tau_min: self.tau_min,
            epoch,
        };
        *lock_clean(&self.view_cache) = Some((structure, view.clone()));
        view
    }

    /// Drops tombstones for ids that exist nowhere (purged by compaction,
    /// or whose delete record outlived the document). A tombstone only
    /// carries information while the document is still physically present
    /// somewhere; keeping the rest would grow the manifest forever.
    fn prune_dead_tombstones(st: &mut LiveState) {
        let mut present: BTreeSet<u64> = BTreeSet::new();
        for seg in &st.segments {
            present.extend(seg.meta.docs.iter().copied());
        }
        for batch in &st.sealing {
            present.extend(batch.docs.iter().map(|(id, _)| *id));
        }
        present.extend(st.memtable.iter().map(|(id, _)| *id));
        st.tombstones.retain(|id| present.contains(id));
    }

    fn record_background_error(&self, detail: String) {
        let mut slot = lock_clean(&self.background_error);
        slot.get_or_insert(detail);
    }

    fn job_started(&self) {
        *lock_clean(&self.pending_jobs) += 1;
    }

    fn job_finished(&self) {
        let mut pending = lock_clean(&self.pending_jobs);
        *pending -= 1;
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    /// Persists the manifest reflecting the current (locked) state.
    fn write_manifest(&self, st: &LiveState) -> Result<(), StoreError> {
        let manifest = wal::LiveManifest {
            applied_seq: st.applied_seq,
            next_doc_id: st.next_doc_id,
            next_segment_id: st.next_segment_id,
            tau_min: self.tau_min,
            epsilon: self.epsilon,
            tombstones: st.tombstones.iter().copied().collect(),
            segments: st.segments.iter().map(|s| s.meta.clone()).collect(),
        };
        wal::save_manifest_with(self.io.as_ref(), self.dir.join(MANIFEST_FILE), &manifest)
    }

    /// Rewrites the WAL keeping only records newer than `applied_seq`
    /// (everything older is reflected in the manifest + segments), then
    /// reopens the writer on the new file. One fsync for the whole file
    /// (plus the rename's directory fsync), not one per record — this
    /// runs under the state lock.
    fn rewrite_wal(&self, st: &mut LiveState) -> Result<(), StoreError> {
        let path = self.dir.join(WAL_FILE);
        let replay = wal::read_wal_with(self.io.as_ref(), &path)?;
        let keep: Vec<wal::WalRecord> = replay
            .records
            .into_iter()
            .filter(|r| r.seq > st.applied_seq)
            .collect();
        let replaced = wal::replace_wal_file_with(self.io.as_ref(), &path, &keep);
        if replaced.is_err() {
            // The replace may have failed *after* its rename (e.g. on the
            // directory fsync): the new file is at `path`, and the current
            // writer handle points at the old, now-unlinked inode — where
            // an acknowledged append would silently vanish. Retry the
            // directory fsync so the rename that did happen is durable.
            wal::fsync_parent_dir_with(self.io.as_ref(), &path)?;
        }
        // Re-attach the writer to whatever file is at `path` now — the new
        // file on success (or post-rename failure), the untouched old one
        // on a pre-rename failure — before surfacing the replace error.
        st.wal = WalWriter::open_append_with(self.io.as_ref(), &path)?;
        replaced
    }

    /// Background seal: build real indexes for one memtable batch, persist
    /// them as a `.coll` segment, and install. Only the install step takes
    /// the state lock — queries keep running against the scan-served batch
    /// while the indexes build.
    fn run_seal(&self, batch_id: u64) -> Result<(), LiveError> {
        // Snapshot the batch (and the tombstones as of now) without
        // holding the lock during the build. Documents already tombstoned
        // are skipped outright: building and persisting an index for a
        // deleted document is pure waste. A delete that lands *after* this
        // snapshot still seals and is filtered at query time until the
        // next compaction.
        let (docs, max_seq) = {
            let st = lock_clean(&self.state);
            let Some(batch) = st.sealing.iter().find(|b| b.batch_id == batch_id) else {
                return Ok(()); // already handled (e.g. duplicate schedule)
            };
            let docs: Vec<(u64, Arc<DocExecutor>)> = batch
                .docs
                .iter()
                .filter(|(id, _)| !st.tombstones.contains(id))
                .cloned()
                .collect();
            (docs, batch.max_seq)
        };
        // From here on this is a real seal (duplicate schedules returned
        // above); the span records on every exit, including failures. The
        // trace root rides along as a background trace (drop = finish).
        let mut seal_trace = self.engine.tracer().root_span("seal");
        seal_trace.set_u64("batch", batch_id);
        seal_trace.set_u64("docs", docs.len() as u64);
        let _seal_span = Span::on(self.metrics.seal_us.clone());
        self.metrics.seals.inc();
        if docs.is_empty() {
            // Nothing (left) to seal: the batch's records are still fully
            // accounted for — every doc is tombstoned — so install the
            // empty result directly.
            let mut st = lock_clean(&self.state);
            st.sealing.retain(|b| b.batch_id != batch_id);
            st.applied_seq = st.applied_seq.max(max_seq);
            // ordering: AcqRel publishes the segment change to the next view()'s
            // Acquire load.
            self.structure_version.fetch_add(1, Ordering::AcqRel);
            Inner::prune_dead_tombstones(&mut st);
            self.write_manifest(&st)?;
            self.rewrite_wal(&mut st)?;
            return Ok(());
        }
        let mut built: Vec<(u64, Arc<DocExecutor>)> = Vec::with_capacity(docs.len());
        let mut sections = Vec::new();
        for (local, (id, exec)) in docs.iter().enumerate() {
            let source = match exec.as_ref() {
                DocExecutor::Scanned(scan) => scan.source().clone(),
                DocExecutor::Built { index, .. } => index.source().clone(),
            };
            let index = Index::build(&source, self.tau_min)?;
            let approx = self
                .epsilon
                .map(|eps| ApproxIndex::build(&source, self.tau_min, eps))
                .transpose()?;
            let mut bytes = Vec::new();
            index.write_snapshot(&mut bytes)?;
            sections.push(CollectionSection {
                doc: local,
                kind: SnapshotKind::Index,
                bytes,
            });
            if let Some(approx) = &approx {
                let mut bytes = Vec::new();
                approx.write_snapshot(&mut bytes)?;
                sections.push(CollectionSection {
                    doc: local,
                    kind: SnapshotKind::Approx,
                    bytes,
                });
            }
            built.push((*id, Arc::new(DocExecutor::Built { index, approx })));
        }
        let (segment_id, file) = {
            let mut st = lock_clean(&self.state);
            let id = st.next_segment_id;
            st.next_segment_id += 1;
            (id, format!("segment_{id:08}.coll"))
        };
        // The segment must be durable — file *and* directory entry —
        // before the manifest names it and the WAL drops its records.
        let segment_path = self.dir.join(&file);
        collection::save_collection_file_with(
            self.io.as_ref(),
            &segment_path,
            docs.len(),
            1,
            &sections,
        )?;
        wal::fsync_parent_dir_with(self.io.as_ref(), &segment_path)?;
        let meta = wal::SegmentMeta {
            id: segment_id,
            file,
            docs: docs.iter().map(|(id, _)| *id).collect(),
        };
        // Install: swap the sealing batch for the sealed segment, advance
        // applied_seq, persist the manifest, shrink the WAL.
        self.metrics.sealed_docs.add(docs.len() as u64);
        let mut st = lock_clean(&self.state);
        st.segments
            .push(Arc::new(SealedSegment { meta, docs: built }));
        st.sealing.retain(|b| b.batch_id != batch_id);
        st.applied_seq = st.applied_seq.max(max_seq);
        // ordering: AcqRel publishes the segment change to the next view()'s
        // Acquire load.
        self.structure_version.fetch_add(1, Ordering::AcqRel);
        Inner::prune_dead_tombstones(&mut st);
        self.write_manifest(&st)?;
        self.rewrite_wal(&mut st)?;
        Ok(())
    }

    /// Background compaction: merge every sealed segment into one, dropping
    /// tombstoned documents for good. Reuses the already-built executors —
    /// per-document indexes are independent, so merging is a rewrite, not a
    /// rebuild.
    fn run_compact(&self) -> Result<(), LiveError> {
        let (captured, tombstones) = {
            let st = lock_clean(&self.state);
            (st.segments.clone(), st.tombstones.clone())
        };
        let has_garbage = captured
            .iter()
            .any(|s| s.meta.docs.iter().any(|id| tombstones.contains(id)));
        if captured.len() <= 1 && !has_garbage {
            return Ok(());
        }
        // Background trace root for the whole compaction (drop = finish).
        let mut compact_trace = self.engine.tracer().root_span("compact");
        compact_trace.set_u64("segments", captured.len() as u64);
        let _compact_span = Span::on(self.metrics.compact_us.clone());
        let captured_docs: usize = captured.iter().map(|s| s.docs.len()).sum();
        let mut kept: Vec<(u64, Arc<DocExecutor>)> = Vec::new();
        for seg in &captured {
            for (id, d) in &seg.docs {
                if !tombstones.contains(id) {
                    kept.push((*id, Arc::clone(d)));
                }
            }
        }
        let kept_docs = kept.len();
        compact_trace.set_u64("captured_docs", captured_docs as u64);
        compact_trace.set_u64("kept_docs", kept_docs as u64);
        let mut sections = Vec::new();
        for (local, (_, d)) in kept.iter().enumerate() {
            let DocExecutor::Built { index, approx } = d.as_ref() else {
                return Err(StoreError::Corrupt {
                    detail: "a sealing batch holds an unbuilt executor".into(),
                }
                .into());
            };
            let mut bytes = Vec::new();
            index.write_snapshot(&mut bytes)?;
            sections.push(CollectionSection {
                doc: local,
                kind: SnapshotKind::Index,
                bytes,
            });
            if let Some(approx) = approx {
                let mut bytes = Vec::new();
                approx.write_snapshot(&mut bytes)?;
                sections.push(CollectionSection {
                    doc: local,
                    kind: SnapshotKind::Approx,
                    bytes,
                });
            }
        }
        let (segment_id, file) = {
            let mut st = lock_clean(&self.state);
            let id = st.next_segment_id;
            st.next_segment_id += 1;
            (id, format!("segment_{id:08}.coll"))
        };
        // Durable before the manifest points at it and the old segment
        // files (the only other copy) are deleted.
        let segment_path = self.dir.join(&file);
        collection::save_collection_file_with(
            self.io.as_ref(),
            &segment_path,
            kept.len(),
            1,
            &sections,
        )?;
        wal::fsync_parent_dir_with(self.io.as_ref(), &segment_path)?;
        let meta = wal::SegmentMeta {
            id: segment_id,
            file,
            docs: kept.iter().map(|(id, _)| *id).collect(),
        };
        let old_files: Vec<String> = {
            let mut st = lock_clean(&self.state);
            // The background worker is the only segment mutator and runs
            // jobs serially, so the captured segments are exactly the
            // current prefix of the list.
            debug_assert!(st.segments.len() >= captured.len());
            let old_files = captured.iter().map(|s| s.meta.file.clone()).collect();
            let tail = st.segments.split_off(captured.len());
            st.segments = vec![Arc::new(SealedSegment { meta, docs: kept })];
            st.segments.extend(tail);
            // Tombstoned documents are gone from the merged segment; drop
            // every tombstone whose document no longer exists anywhere
            // (including strays a replayed delete record resurrected after
            // an earlier compaction already removed the document).
            // ordering: AcqRel publishes the segment change to the next view()'s
            // Acquire load.
            self.structure_version.fetch_add(1, Ordering::AcqRel);
            Inner::prune_dead_tombstones(&mut st);
            self.write_manifest(&st)?;
            old_files
        };
        for file in old_files {
            let _ = self.io.remove_file(&self.dir.join(file));
        }
        self.metrics.compactions.inc();
        self.metrics
            .compact_drops
            .add((captured_docs - kept_docs) as u64);
        Ok(())
    }
}

/// A mutable uncertain-document collection: durable writes, immediately
/// queryable documents, and background index maintenance. See the
/// [module docs](self) for the architecture.
pub struct LiveService {
    inner: Arc<Inner>,
    jobs: Sender<Job>,
    seal_threshold: usize,
    worker: Option<JoinHandle<()>>,
}

impl LiveService {
    /// Opens (or creates) the live collection in `dir`. An existing
    /// directory recovers its durable state: the manifest names the sealed
    /// segments (loaded from their `.coll` files), and the WAL tail
    /// replays into the memtable — a torn final record (interrupted crash
    /// write) is discarded, every committed write is recovered. On an
    /// existing directory, `config.tau_min`/`config.epsilon` are ignored
    /// in favor of the recorded values.
    pub fn open(dir: impl AsRef<Path>, config: LiveConfig) -> Result<Self, LiveError> {
        Self::open_with_io(dir, config, Arc::new(RealIo))
    }

    /// [`LiveService::open`] with an injectable filesystem seam: every
    /// durable operation (WAL appends, manifest replaces, segment
    /// saves/loads/removes) goes through `io`. The advisory `LOCK` file
    /// stays on the real filesystem — it guards against concurrent *real*
    /// processes, and faulting it would only test the test harness.
    pub fn open_with_io(
        dir: impl AsRef<Path>,
        config: LiveConfig,
        io: Arc<dyn StoreIo>,
    ) -> Result<Self, LiveError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // One writer per directory: two processes appending to the same
        // WAL would interleave records with duplicate sequence numbers.
        let dir_lock = File::create(dir.join(LOCK_FILE))?;
        if let Err(e) = dir_lock.try_lock() {
            return Err(match e {
                std::fs::TryLockError::WouldBlock => LiveError::DirectoryLocked { dir },
                std::fs::TryLockError::Error(io) => io.into(),
            });
        }
        let metrics = LiveMetrics::new();
        let recovery_started = std::time::Instant::now();
        let manifest = wal::load_manifest_with(io.as_ref(), dir.join(MANIFEST_FILE))?;
        let (tau_min, epsilon) = match &manifest {
            Some(m) => (m.tau_min, m.epsilon),
            None => (config.tau_min, config.epsilon),
        };
        if !canon::valid_tau(tau_min) {
            return Err(LiveError::Config(format!(
                "tau_min {tau_min} is outside (0, 1]"
            )));
        }
        if let Some(eps) = epsilon {
            if !canon::valid_epsilon(eps) {
                return Err(LiveError::Config(format!(
                    "epsilon {eps} is outside (0, 1)"
                )));
            }
        }
        let fresh_directory = manifest.is_none();
        let manifest = manifest.unwrap_or(wal::LiveManifest {
            tau_min,
            epsilon,
            ..Default::default()
        });

        // Load sealed segments from their collection snapshots.
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for meta in &manifest.segments {
            let coll = collection::load_collection_file_with(io.as_ref(), dir.join(&meta.file))?;
            let corrupt = |detail: String| StoreError::Corrupt { detail };
            if coll.num_docs != meta.docs.len() {
                return Err(corrupt(format!(
                    "segment {} holds {} documents, manifest says {}",
                    meta.id,
                    coll.num_docs,
                    meta.docs.len()
                ))
                .into());
            }
            let mut index_bytes: Vec<Option<Vec<u8>>> = (0..coll.num_docs).map(|_| None).collect();
            let mut approx_bytes: Vec<Option<Vec<u8>>> = (0..coll.num_docs).map(|_| None).collect();
            for section in coll.sections {
                let table = match section.kind {
                    SnapshotKind::Index => &mut index_bytes,
                    SnapshotKind::Approx => &mut approx_bytes,
                    other => {
                        return Err(corrupt(format!(
                            "segment {} document {} holds unsupported kind {}",
                            meta.id, section.doc, other as u8
                        ))
                        .into())
                    }
                };
                let Some(slot) = table.get_mut(section.doc) else {
                    return Err(corrupt(format!(
                        "segment {} section names document {} of {}",
                        meta.id, section.doc, coll.num_docs
                    ))
                    .into());
                };
                if slot.replace(section.bytes).is_some() {
                    return Err(corrupt(format!(
                        "segment {} document {} has duplicate sections",
                        meta.id, section.doc
                    ))
                    .into());
                }
            }
            let mut docs = Vec::with_capacity(coll.num_docs);
            for (local, (ib, ab)) in index_bytes.into_iter().zip(approx_bytes).enumerate() {
                let ib = ib.ok_or_else(|| {
                    corrupt(format!(
                        "segment {} document {local} has no substring-index section",
                        meta.id
                    ))
                })?;
                let index = Index::read_snapshot(ib.as_slice())?;
                let approx = ab
                    .map(|bytes| ApproxIndex::read_snapshot(bytes.as_slice()))
                    .transpose()?;
                let Some(&doc_id) = meta.docs.get(local) else {
                    return Err(corrupt(format!(
                        "segment {} holds more documents than its manifest entry",
                        meta.id
                    ))
                    .into());
                };
                docs.push((doc_id, Arc::new(DocExecutor::Built { index, approx })));
            }
            segments.push(Arc::new(SealedSegment {
                meta: meta.clone(),
                docs,
            }));
        }

        // Replay the WAL tail (everything newer than the manifest) into
        // the memtable and tombstone set.
        let wal_path = dir.join(WAL_FILE);
        let replay = wal::read_wal_with(io.as_ref(), &wal_path)?;
        let mut memtable: Vec<(u64, Arc<DocExecutor>)> = Vec::new();
        let mut tombstones: BTreeSet<u64> = manifest.tombstones.iter().copied().collect();
        let mut next_doc_id = manifest.next_doc_id;
        let mut next_seq = manifest.applied_seq + 1;
        for record in &replay.records {
            next_seq = next_seq.max(record.seq + 1);
            if record.seq <= manifest.applied_seq {
                continue; // already reflected in the manifest's segments
            }
            match &record.op {
                WalOp::Insert { doc, body } => {
                    let scan = ScanIndex::new(body.clone(), tau_min)?;
                    memtable.push((*doc, Arc::new(DocExecutor::Scanned(scan))));
                    next_doc_id = next_doc_id.max(doc + 1);
                }
                WalOp::Delete { doc } => {
                    tombstones.insert(*doc);
                }
                WalOp::Manifest(_) => {
                    return Err(LiveError::Store(StoreError::Corrupt {
                        detail: "manifest record inside the WAL".into(),
                    }))
                }
            }
        }
        if !replay.clean {
            // Drop the torn tail record before appending anything new.
            wal::replace_wal_file_with(io.as_ref(), &wal_path, &replay.records)?;
        }
        let wal = WalWriter::open_append_with(io.as_ref(), &wal_path)?;
        metrics.recovered_records.add(replay.records.len() as u64);
        metrics
            .recovery_us
            .record(u64::try_from(recovery_started.elapsed().as_micros()).unwrap_or(u64::MAX));

        let mut state = LiveState {
            wal,
            memtable,
            sealing: Vec::new(),
            segments,
            tombstones,
            next_doc_id,
            next_seq,
            next_segment_id: manifest.next_segment_id,
            next_batch_id: 0,
            applied_seq: manifest.applied_seq,
        };
        Inner::prune_dead_tombstones(&mut state);
        let state = state;
        let threads = if config.threads > 0 {
            config.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let inner = Arc::new(Inner {
            dir,
            io,
            tau_min,
            epsilon,
            compact_min_segments: config.compact_min_segments,
            state: Mutex::new(state),
            engine: Engine::new(threads, config.cache_capacity),
            generation: AtomicU64::new(0),
            structure_version: AtomicU64::new(0),
            view_cache: Mutex::new(None),
            _dir_lock: dir_lock,
            pending_jobs: Mutex::new(0),
            idle: Condvar::new(),
            background_error: Mutex::new(None),
            metrics,
        });
        if fresh_directory {
            // Record tau_min/epsilon immediately: a never-sealed directory
            // must not adopt whatever config the *next* opener passes.
            let st = lock_clean(&inner.state);
            inner.write_manifest(&st)?;
        }

        let (tx, rx) = channel::<Job>();
        let worker_inner = Arc::clone(&inner);
        let worker_tx = tx.clone();
        let worker = std::thread::Builder::new()
            .name("ustr-live-maintenance".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    // Once any maintenance step fails, stop maintaining: a
                    // later seal would advance applied_seq past the failed
                    // batch's records and truncate them out of the WAL,
                    // losing acknowledged writes. The sticky error already
                    // blocks new mutations; draining jobs keeps wait_idle
                    // honest.
                    let halted = lock_clean(&worker_inner.background_error).is_some();
                    match job {
                        Job::Shutdown => break,
                        Job::Seal { .. } | Job::Compact if halted => {
                            worker_inner.job_finished();
                        }
                        Job::Seal { batch_id } => {
                            if let Err(e) = worker_inner.run_seal(batch_id) {
                                worker_inner.record_background_error(format!("seal failed: {e}"));
                            } else if worker_inner.compact_min_segments > 0 {
                                let count = {
                                    let st = lock_clean(&worker_inner.state);
                                    st.segments.len()
                                };
                                if count >= worker_inner.compact_min_segments {
                                    worker_inner.job_started();
                                    // The channel outlives the worker; a send
                                    // failure only means shutdown won the race.
                                    if worker_tx.send(Job::Compact).is_err() {
                                        worker_inner.job_finished();
                                    }
                                }
                            }
                            worker_inner.job_finished();
                        }
                        Job::Compact => {
                            if let Err(e) = worker_inner.run_compact() {
                                worker_inner
                                    .record_background_error(format!("compaction failed: {e}"));
                            }
                            worker_inner.job_finished();
                        }
                    }
                }
            })
            .map_err(LiveError::Io)?;

        Ok(Self {
            inner,
            jobs: tx,
            seal_threshold: config.seal_threshold,
            worker: Some(worker),
        })
    }

    /// Surfaces a sticky background failure, if any.
    fn check_background(&self) -> Result<(), LiveError> {
        let slot = lock_clean(&self.inner.background_error);
        match slot.as_ref() {
            Some(detail) => Err(LiveError::Background(detail.clone())),
            None => Ok(()),
        }
    }

    /// The sticky background failure, if any, without turning it into an
    /// error: reads keep serving a degraded (maintenance-halted)
    /// collection, and the serving layer uses this to *report* the
    /// degradation (e.g. the net protocol's health frame) instead of
    /// refusing queries.
    pub fn background_health(&self) -> Option<String> {
        lock_clean(&self.inner.background_error).clone()
    }

    fn enqueue(&self, job: Job) {
        self.inner.job_started();
        if self.jobs.send(job).is_err() {
            self.inner.job_finished();
        }
    }

    /// Inserts a document, returning its stable id. The write is in the
    /// fsynced WAL before this returns, and the document is immediately
    /// queryable (scan-served until a seal indexes it). May trigger a
    /// background seal per [`LiveConfig::seal_threshold`].
    pub fn insert(&self, body: UncertainString) -> Result<u64, LiveError> {
        self.check_background()?;
        let scan = ScanIndex::new(body.clone(), self.inner.tau_min)?;
        let mut st = lock_clean(&self.inner.state);
        let id = st.next_doc_id;
        let seq = st.next_seq;
        // WAL appends trace as background roots: one span per durable
        // write, tagged with the doc id and byte count.
        let mut trace = self.inner.engine.tracer().root_span("wal_append");
        let wal_span = Span::on(self.inner.metrics.wal_fsync_us.clone());
        let appended = st.wal.append(&WalRecord {
            seq,
            op: WalOp::Insert { doc: id, body },
        });
        wal_span.finish();
        let bytes = appended?;
        trace.set_u64("doc", id);
        trace.set_u64("bytes", bytes);
        trace.finish();
        self.inner.metrics.wal_appends.inc();
        self.inner.metrics.wal_bytes.add(bytes);
        self.inner.metrics.inserts.inc();
        st.next_doc_id += 1;
        st.next_seq += 1;
        st.memtable.push((id, Arc::new(DocExecutor::Scanned(scan))));
        let batch = if self.seal_threshold > 0 && st.memtable.len() >= self.seal_threshold {
            Self::freeze_memtable(&mut st)
        } else {
            None
        };
        // ordering: AcqRel — both bumps publish the mutation to the next
        // view()'s Acquire loads.
        self.inner.generation.fetch_add(1, Ordering::AcqRel);
        self.inner.structure_version.fetch_add(1, Ordering::AcqRel);
        drop(st);
        if let Some(batch_id) = batch {
            self.enqueue(Job::Seal { batch_id });
        }
        self.inner.engine.invalidate_cache();
        Ok(id)
    }

    /// Moves the current memtable into a sealing batch (still
    /// query-visible); returns its id, or `None` for an empty memtable.
    fn freeze_memtable(st: &mut LiveState) -> Option<u64> {
        if st.memtable.is_empty() {
            return None;
        }
        let batch_id = st.next_batch_id;
        st.next_batch_id += 1;
        let docs = std::mem::take(&mut st.memtable);
        // Every WAL record so far is covered once this batch is sealed:
        // inserts are in segments or this batch, deletes are tombstones
        // snapshotted into the manifest at install time.
        let max_seq = st.next_seq - 1;
        st.sealing.push(SealingBatch {
            batch_id,
            docs,
            max_seq,
        });
        Some(batch_id)
    }

    /// Tombstones a live document. The delete is durable (fsynced WAL)
    /// and takes effect immediately; the document's storage is reclaimed
    /// by the next compaction.
    pub fn delete(&self, id: u64) -> Result<(), LiveError> {
        self.check_background()?;
        let mut st = lock_clean(&self.inner.state);
        let exists = !st.tombstones.contains(&id)
            && (st.memtable.iter().any(|(d, _)| *d == id)
                || st
                    .sealing
                    .iter()
                    .any(|b| b.docs.iter().any(|(d, _)| *d == id))
                || st.segments.iter().any(|s| s.meta.docs.contains(&id)));
        if !exists {
            return Err(LiveError::UnknownDocument { id });
        }
        let seq = st.next_seq;
        let wal_span = Span::on(self.inner.metrics.wal_fsync_us.clone());
        let appended = st.wal.append(&WalRecord {
            seq,
            op: WalOp::Delete { doc: id },
        });
        wal_span.finish();
        let bytes = appended?;
        self.inner.metrics.wal_appends.inc();
        self.inner.metrics.wal_bytes.add(bytes);
        self.inner.metrics.deletes.inc();
        st.next_seq += 1;
        st.tombstones.insert(id);
        // ordering: AcqRel — both bumps publish the mutation to the next
        // view()'s Acquire loads.
        self.inner.generation.fetch_add(1, Ordering::AcqRel);
        self.inner.structure_version.fetch_add(1, Ordering::AcqRel);
        drop(st);
        self.inner.engine.invalidate_cache();
        Ok(())
    }

    /// Schedules a background seal of the current memtable (no-op when the
    /// memtable is empty). Returns immediately; [`LiveService::wait_idle`]
    /// blocks until the segment is installed.
    pub fn seal(&self) -> Result<(), LiveError> {
        self.check_background()?;
        let mut st = lock_clean(&self.inner.state);
        if let Some(batch_id) = Self::freeze_memtable(&mut st) {
            // ordering: AcqRel publishes the tombstone purge to the next view()'s
            // Acquire load.
            self.inner.structure_version.fetch_add(1, Ordering::AcqRel);
            drop(st);
            self.enqueue(Job::Seal { batch_id });
        }
        Ok(())
    }

    /// Schedules a background compaction merging every sealed segment into
    /// one and dropping tombstoned documents. Returns immediately.
    pub fn compact(&self) -> Result<(), LiveError> {
        self.check_background()?;
        self.enqueue(Job::Compact);
        Ok(())
    }

    /// Blocks until every scheduled background job (seals, compactions)
    /// has completed, then surfaces any background failure.
    pub fn wait_idle(&self) -> Result<(), LiveError> {
        let mut pending = lock_clean(&self.inner.pending_jobs);
        while *pending > 0 {
            pending = wait_clean(&self.inner.idle, pending);
        }
        drop(pending);
        self.check_background()
    }

    /// Seals the memtable and waits for the segment install (a synchronous
    /// flush: afterwards every document is index-served and the WAL holds
    /// only post-seal records).
    pub fn flush(&self) -> Result<(), LiveError> {
        self.seal()?;
        self.wait_idle()
    }

    /// The construction threshold every document uses.
    pub fn tau_min(&self) -> f64 {
        self.inner.tau_min
    }

    /// ε for sealed approx indexes, when configured.
    pub fn epsilon(&self) -> Option<f64> {
        self.inner.epsilon
    }

    /// Number of live (inserted, not deleted) documents.
    pub fn num_docs(&self) -> usize {
        self.live_doc_ids().len()
    }

    /// Stable ids of every live document, ascending.
    pub fn live_doc_ids(&self) -> Vec<u64> {
        let st = lock_clean(&self.inner.state);
        let mut ids = Vec::new();
        for seg in &st.segments {
            ids.extend(seg.meta.docs.iter().copied());
        }
        for batch in &st.sealing {
            ids.extend(batch.docs.iter().map(|(id, _)| *id));
        }
        ids.extend(st.memtable.iter().map(|(id, _)| *id));
        ids.retain(|id| !st.tombstones.contains(id));
        ids.sort_unstable();
        ids
    }

    /// The live documents themselves, in ascending stable-id order
    /// (cloned; used by tests and offline rebuilds).
    pub fn live_docs(&self) -> Vec<(u64, UncertainString)> {
        let st = lock_clean(&self.inner.state);
        let mut docs: Vec<(u64, UncertainString)> = Vec::new();
        let mut push = |id: u64, d: &DocExecutor| {
            if !st.tombstones.contains(&id) {
                let body = match d {
                    DocExecutor::Scanned(scan) => scan.source().clone(),
                    DocExecutor::Built { index, .. } => index.source().clone(),
                };
                docs.push((id, body));
            }
        };
        for seg in &st.segments {
            for (id, d) in &seg.docs {
                push(*id, d);
            }
        }
        for batch in &st.sealing {
            for (id, d) in &batch.docs {
                push(*id, d);
            }
        }
        for (id, d) in &st.memtable {
            push(*id, d);
        }
        docs.sort_by_key(|&(id, _)| id);
        docs
    }

    /// Number of sealed segments currently serving.
    pub fn num_segments(&self) -> usize {
        lock_clean(&self.inner.state).segments.len()
    }

    /// Number of documents currently scan-served (memtable + batches whose
    /// seal has not installed yet).
    pub fn memtable_len(&self) -> usize {
        let st = lock_clean(&self.inner.state);
        st.memtable.len() + st.sealing.iter().map(|b| b.docs.len()).sum::<usize>()
    }

    /// `(hits, misses)` of the result cache — cumulative totals for the
    /// service's lifetime (never reset, not even by the invalidation every
    /// mutation performs).
    pub fn cache_stats(&self) -> (u64, u64) {
        self.inner.engine.cache_stats()
    }

    /// Point-in-time snapshot of the service's metrics: background-event
    /// telemetry (WAL appends/bytes/fsync time, seal durations, compaction
    /// drops) merged with the engine's dispatch metrics (cache counters,
    /// stage histograms). Instance-scoped — two services in one process
    /// never mix counts.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.metrics.registry.snapshot();
        snap.merge(&self.inner.engine.metrics_snapshot());
        snap
    }

    /// The engine's slow-query ring buffer (threshold adjustable at
    /// runtime).
    pub fn slow_log(&self) -> &ustr_obs::SlowQueryLog {
        self.inner.engine.slow_log()
    }

    /// Answers a typed batch of any mix of query modes over a consistent
    /// point-in-time snapshot, fanning out on the thread pool through the
    /// same dispatcher as the static service. Document ids in responses
    /// are the stable insert-time ids.
    pub fn query_requests(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, Error>> {
        let view = self.inner.view();
        self.inner.engine.run(&view, requests)
    }

    /// [`LiveService::query_requests`] with tracing: each request's trace
    /// (fresh, or continuing a propagated parent context) is summarized
    /// alongside its response. See [`Engine::run_traced`].
    pub fn query_requests_traced(
        &self,
        requests: &[QueryRequest],
        parents: &[Option<ustr_obs::TraceContext>],
    ) -> Vec<(
        Result<QueryResponse, Error>,
        Option<ustr_service::TraceSummary>,
    )> {
        let view = self.inner.view();
        self.inner.engine.run_traced(&view, requests, parents)
    }

    /// The engine's tracer. Queries *and* background work (WAL appends,
    /// seals, compactions) trace through it, so one `/traces` export shows
    /// foreground latency next to the background churn that caused it.
    pub fn tracer(&self) -> &std::sync::Arc<ustr_obs::Tracer> {
        self.inner.engine.tracer()
    }

    /// Sequential reference for [`LiveService::query_requests`] (same
    /// snapshot semantics, same merge path, no pool) — answers are
    /// identical for every mode.
    pub fn query_requests_sequential(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<QueryResponse, Error>> {
        let view = self.inner.view();
        self.inner.engine.run_sequential(&view, requests)
    }

    /// Answers one threshold query.
    pub fn query(&self, pattern: &[u8], tau: f64) -> Result<Vec<DocHits>, Error> {
        let req = QueryRequest::Threshold {
            pattern: pattern.to_vec(),
            tau,
        };
        match self.one_request(req)? {
            QueryResponse::Threshold(shared) => Ok(shared.as_ref().clone()),
            _ => Err(Error::internal(
                "threshold request produced a mismatched response kind",
            )),
        }
    }

    /// Answers one collection-wide top-k query.
    pub fn query_top_k(&self, pattern: &[u8], k: usize) -> Result<Vec<TopHit>, Error> {
        let req = QueryRequest::TopK {
            pattern: pattern.to_vec(),
            k,
        };
        match self.one_request(req)? {
            QueryResponse::TopK(shared) => Ok(shared.as_ref().clone()),
            _ => Err(Error::internal(
                "top-k request produced a mismatched response kind",
            )),
        }
    }

    /// Answers one listing query.
    pub fn query_listing(&self, pattern: &[u8], tau: f64) -> Result<Vec<ListingHit>, Error> {
        let req = QueryRequest::Listing {
            pattern: pattern.to_vec(),
            tau,
        };
        match self.one_request(req)? {
            QueryResponse::Listing(shared) => Ok(shared.as_ref().clone()),
            _ => Err(Error::internal(
                "listing request produced a mismatched response kind",
            )),
        }
    }

    /// Answers one ε-approximate query (exact for scan-served documents
    /// and when ε is not configured).
    pub fn query_approx(&self, pattern: &[u8], tau: f64) -> Result<Vec<DocHits>, Error> {
        let req = QueryRequest::Approx {
            pattern: pattern.to_vec(),
            tau,
        };
        match self.one_request(req)? {
            QueryResponse::Approx(shared) => Ok(shared.as_ref().clone()),
            _ => Err(Error::internal(
                "approx request produced a mismatched response kind",
            )),
        }
    }

    fn one_request(&self, req: QueryRequest) -> Result<QueryResponse, Error> {
        self.query_requests(std::slice::from_ref(&req))
            .pop()
            .unwrap_or_else(|| {
                Err(Error::internal(
                    "the engine returned no response for a one-request batch",
                ))
            })
    }
}

impl Drop for LiveService {
    fn drop(&mut self) {
        let _ = self.jobs.send(Job::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustr_service::{QueryService, ServiceConfig};

    fn doc(spec: &str) -> UncertainString {
        UncertainString::parse(spec).unwrap()
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(seal_threshold: usize) -> LiveConfig {
        LiveConfig {
            threads: 2,
            cache_capacity: 16,
            tau_min: 0.05,
            epsilon: None,
            seal_threshold,
            compact_min_segments: 0,
        }
    }

    fn sample_docs() -> Vec<UncertainString> {
        vec![
            doc("A:.9,B:.1 | B | C | A | B"),
            doc("C | C | C"),
            doc("A:.5,B:.5 | B | A:.7,C:.3 | B"),
            UncertainString::deterministic(b"ABABAB"),
            doc("B | A:.2,B:.8 | B"),
        ]
    }

    /// Static reference over the same documents (dense ids = position in
    /// ascending stable-id order).
    fn static_reference(live: &LiveService) -> QueryService {
        let docs: Vec<UncertainString> = live.live_docs().into_iter().map(|(_, d)| d).collect();
        QueryService::build(
            &docs,
            live.tau_min(),
            ServiceConfig {
                threads: 1,
                shards: 1,
                cache_capacity: 0,
                epsilon: None,
            },
        )
        .unwrap()
    }

    /// Translates a static response's dense ids to the live stable ids.
    fn translate(resp: &QueryResponse, ids: &[u64]) -> QueryResponse {
        match resp {
            QueryResponse::Threshold(h) => QueryResponse::Threshold(Arc::new(
                h.iter()
                    .map(|d| DocHits {
                        doc: ids[d.doc] as usize,
                        hits: d.hits.clone(),
                    })
                    .collect(),
            )),
            QueryResponse::Approx(h) => QueryResponse::Approx(Arc::new(
                h.iter()
                    .map(|d| DocHits {
                        doc: ids[d.doc] as usize,
                        hits: d.hits.clone(),
                    })
                    .collect(),
            )),
            QueryResponse::TopK(h) => QueryResponse::TopK(Arc::new(
                h.iter()
                    .map(|t| TopHit {
                        doc: ids[t.doc] as usize,
                        pos: t.pos,
                        prob: t.prob,
                    })
                    .collect(),
            )),
            QueryResponse::Listing(h) => QueryResponse::Listing(Arc::new(
                h.iter()
                    .map(|l| ListingHit {
                        doc: ids[l.doc] as usize,
                        relevance: l.relevance,
                    })
                    .collect(),
            )),
        }
    }

    fn mixed_batch() -> Vec<QueryRequest> {
        vec![
            QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
            QueryRequest::TopK {
                pattern: b"AB".to_vec(),
                k: 4,
            },
            QueryRequest::Listing {
                pattern: b"B".to_vec(),
                tau: 0.5,
            },
            QueryRequest::Approx {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            },
        ]
    }

    #[test]
    fn background_work_and_queries_trace_through_one_tracer() {
        let dir = fresh_dir("ustr-live-trace-test");
        let live = LiveService::open(&dir, config(2)).unwrap();
        live.tracer().set_sample_permyriad(ustr_obs::SAMPLE_SCALE);
        for d in sample_docs() {
            live.insert(d).unwrap();
        }
        live.wait_idle().unwrap();
        live.compact().unwrap();
        live.wait_idle().unwrap();
        let out = live.query_requests_traced(
            &[QueryRequest::Threshold {
                pattern: b"AB".to_vec(),
                tau: 0.3,
            }],
            &[],
        );
        assert!(out[0].0.is_ok());
        assert!(out[0].1.is_some());
        let spans = live.tracer().spans();
        let names: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
        // Foreground and background activity share the ring: WAL appends
        // (one per insert), at least one seal, and the traced query.
        assert!(names.contains("wal_append"), "names = {names:?}");
        assert!(names.contains("seal"), "names = {names:?}");
        assert!(names.contains("request"), "names = {names:?}");
        assert_eq!(
            spans.iter().filter(|s| s.name == "wal_append").count(),
            sample_docs().len()
        );
        let seal = spans.iter().find(|s| s.name == "seal").unwrap();
        assert!(matches!(
            seal.attrs.get("docs"),
            Some(ustr_obs::AttrValue::U64(n)) if n > 0
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn assert_matches_static(live: &LiveService) {
        let stat = static_reference(live);
        let ids = live.live_doc_ids();
        let batch = mixed_batch();
        let got = live.query_requests(&batch);
        let seq = live.query_requests_sequential(&batch);
        let want = stat.query_requests_sequential(&batch);
        for (q, ((g, s), w)) in got.iter().zip(seq.iter()).zip(want.iter()).enumerate() {
            let g = g.as_ref().unwrap();
            assert_eq!(
                g,
                s.as_ref().unwrap(),
                "request {q}: parallel != sequential"
            );
            assert_eq!(
                g,
                &translate(w.as_ref().unwrap(), &ids),
                "request {q}: live != static rebuild"
            );
        }
    }

    #[test]
    fn memtable_docs_answer_immediately_and_match_static() {
        let dir = fresh_dir("ustr_live_memtable");
        let live = LiveService::open(&dir, config(0)).unwrap();
        for d in sample_docs() {
            live.insert(d).unwrap();
        }
        assert_eq!(live.num_segments(), 0, "nothing sealed yet");
        assert_eq!(live.memtable_len(), 5);
        assert_matches_static(&live);
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_segments_answer_identically() {
        let dir = fresh_dir("ustr_live_sealed");
        let live = LiveService::open(&dir, config(2)).unwrap();
        for d in sample_docs() {
            live.insert(d).unwrap();
        }
        live.wait_idle().unwrap();
        assert!(live.num_segments() >= 2, "auto-seals at threshold 2");
        assert_matches_static(&live);
        // Deletes tombstone across segments and memtable alike.
        live.delete(0).unwrap();
        live.delete(4).unwrap();
        assert_eq!(live.num_docs(), 3);
        assert_matches_static(&live);
        assert!(matches!(
            live.delete(0),
            Err(LiveError::UnknownDocument { id: 0 })
        ));
        assert!(matches!(
            live.delete(99),
            Err(LiveError::UnknownDocument { id: 99 })
        ));
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_merges_segments_and_reclaims_tombstones() {
        let dir = fresh_dir("ustr_live_compact");
        let live = LiveService::open(&dir, config(1)).unwrap();
        for d in sample_docs() {
            live.insert(d).unwrap();
        }
        live.wait_idle().unwrap();
        assert_eq!(live.num_segments(), 5);
        live.delete(1).unwrap();
        live.compact().unwrap();
        live.wait_idle().unwrap();
        assert_eq!(live.num_segments(), 1);
        assert_eq!(live.num_docs(), 4);
        assert_matches_static(&live);
        // The tombstone was physically reclaimed: one segment file remains.
        let colls = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "coll")
            })
            .count();
        assert_eq!(colls, 1);
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_restores_memtable_segments_and_tombstones() {
        let dir = fresh_dir("ustr_live_recovery");
        {
            let live = LiveService::open(&dir, config(2)).unwrap();
            for d in sample_docs() {
                live.insert(d).unwrap();
            }
            live.wait_idle().unwrap();
            live.delete(2).unwrap();
        }
        // Reopen: sealed segments load from .coll, the WAL tail replays.
        let live = LiveService::open(&dir, config(0)).unwrap();
        assert_eq!(live.num_docs(), 4);
        assert_eq!(live.live_doc_ids(), vec![0, 1, 3, 4]);
        assert_matches_static(&live);
        // New writes continue from the recovered counters.
        let id = live.insert(doc("C | A:.6,B:.4")).unwrap();
        assert_eq!(id, 5);
        assert_matches_static(&live);
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_run_concurrently_with_a_seal() {
        let dir = fresh_dir("ustr_live_concurrent");
        let live = Arc::new(LiveService::open(&dir, config(0)).unwrap());
        // A fat memtable so the background build takes a little while.
        for i in 0..40 {
            let spec = match i % 3 {
                0 => "A:.9,B:.1 | B | C | A | B | A:.5,C:.5 | B | A",
                1 => "C | C | C | A:.5,B:.5 | B | C | B:.7,C:.3",
                _ => "A:.5,B:.5 | B | A:.7,C:.3 | B | A | B | C | A:.4,B:.6",
            };
            live.insert(doc(spec)).unwrap();
        }
        let before = live.query(b"AB", 0.3).unwrap();
        live.seal().unwrap();
        // Hammer queries while the seal builds and installs off-thread.
        let mut observed = 0u32;
        loop {
            let during = live.query(b"AB", 0.3).unwrap();
            assert_eq!(during, before, "answers never change across a seal");
            observed += 1;
            let idle = *live.inner.pending_jobs.lock().unwrap() == 0;
            if idle && observed > 3 {
                break;
            }
        }
        live.wait_idle().unwrap();
        assert_eq!(live.num_segments(), 1);
        assert_eq!(live.memtable_len(), 0);
        assert_eq!(live.query(b"AB", 0.3).unwrap(), before);
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_directories_record_their_config_before_any_seal() {
        let dir = fresh_dir("ustr_live_fresh_manifest");
        {
            let cfg = LiveConfig {
                tau_min: 0.01,
                ..config(0)
            };
            let live = LiveService::open(&dir, cfg).unwrap();
            live.insert(doc("A:.2,B:.8 | B")).unwrap();
            // No seal ever ran; the manifest must still exist.
        }
        // A reopen with a *different* configured tau_min adopts the
        // recorded 0.01, so low-τ queries keep working.
        let live = LiveService::open(&dir, LiveConfig::default()).unwrap();
        assert_eq!(live.tau_min(), 0.01);
        let hits = live.query(b"AB", 0.02).unwrap();
        assert_eq!(hits.len(), 1);
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_do_not_accumulate_across_compactions_and_reopens() {
        let dir = fresh_dir("ustr_live_tombstone_prune");
        {
            let live = LiveService::open(&dir, config(2)).unwrap();
            for d in sample_docs() {
                live.insert(d).unwrap();
            }
            live.flush().unwrap();
            live.delete(1).unwrap();
            live.compact().unwrap();
            live.wait_idle().unwrap();
        }
        // The WAL still holds the delete record; reopening must not let it
        // resurrect a tombstone for the already-purged document forever.
        let live = LiveService::open(&dir, config(0)).unwrap();
        assert_eq!(live.num_docs(), 4);
        live.flush().unwrap();
        live.compact().unwrap();
        live.wait_idle().unwrap();
        drop(live);
        let manifest = ustr_store::load_manifest(dir.join(MANIFEST_FILE))
            .unwrap()
            .unwrap();
        assert!(
            manifest.tombstones.is_empty(),
            "purged tombstones must not persist: {:?}",
            manifest.tombstones
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_opener_is_rejected_while_the_directory_is_live() {
        let dir = fresh_dir("ustr_live_lock");
        let live = LiveService::open(&dir, config(0)).unwrap();
        live.insert(doc("A | B")).unwrap();
        assert!(matches!(
            LiveService::open(&dir, config(0)),
            Err(LiveError::DirectoryLocked { .. })
        ));
        drop(live);
        // The lock dies with the service: reopening now succeeds.
        let reopened = LiveService::open(&dir, config(0)).unwrap();
        assert_eq!(reopened.num_docs(), 1);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_is_invalidated_on_every_mutation() {
        let dir = fresh_dir("ustr_live_cache");
        let live = LiveService::open(&dir, config(0)).unwrap();
        live.insert(doc("A:.9,B:.1 | B")).unwrap();
        let first = live.query(b"AB", 0.5).unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(live.cache_stats(), (0, 1));
        let again = live.query(b"AB", 0.5).unwrap();
        assert_eq!(again, first);
        assert_eq!(live.cache_stats(), (1, 1), "repeat is cache-served");
        // A mutation drops the entry: the same query misses and recomputes
        // against the new collection state.
        live.insert(doc("A | B")).unwrap();
        let after = live.query(b"AB", 0.5).unwrap();
        assert_eq!(after.len(), 2);
        assert_eq!(live.cache_stats(), (1, 2), "mutation invalidated the cache");
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epsilon_directories_serve_approx_from_sealed_segments() {
        let dir = fresh_dir("ustr_live_epsilon");
        let cfg = LiveConfig {
            epsilon: Some(0.05),
            ..config(0)
        };
        let live = LiveService::open(&dir, cfg).unwrap();
        for d in sample_docs() {
            live.insert(d).unwrap();
        }
        live.flush().unwrap();
        let eps = live.epsilon().unwrap();
        // ε-sandwich: everything ≥ τ is present, nothing below τ − ε.
        let tau = 0.4;
        let must: Vec<(usize, usize)> = live
            .query(b"AB", tau)
            .unwrap()
            .iter()
            .flat_map(|d| d.hits.iter().map(|&(p, _)| (d.doc, p)).collect::<Vec<_>>())
            .collect();
        let may: Vec<(usize, usize)> = live
            .query(b"AB", (tau - eps).max(0.05))
            .unwrap()
            .iter()
            .flat_map(|d| d.hits.iter().map(|&(p, _)| (d.doc, p)).collect::<Vec<_>>())
            .collect();
        let got: Vec<(usize, usize)> = live
            .query_approx(b"AB", tau)
            .unwrap()
            .iter()
            .flat_map(|d| d.hits.iter().map(|&(p, _)| (d.doc, p)).collect::<Vec<_>>())
            .collect();
        for m in &must {
            assert!(got.contains(m), "missing exact hit {m:?}");
        }
        for g in &got {
            assert!(may.contains(g), "spurious hit {g:?} below tau - eps");
        }
        // Reopening adopts the recorded ε even when the config omits it.
        drop(live);
        let live = LiveService::open(&dir, config(0)).unwrap();
        assert_eq!(live.epsilon(), Some(0.05));
        drop(live);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
