//! Live/static equivalence property test: any interleaving of inserts,
//! deletes, and mixed-mode queries on a [`LiveService`] answers
//! **byte-identically** to a static [`QueryService`] rebuilt from scratch
//! over the same live documents — at 1 and at 8 threads, with seals and
//! compactions firing in the background mid-interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use ustr_live::{LiveConfig, LiveService};
use ustr_service::{
    DocHits, ListingHit, QueryRequest, QueryResponse, QueryService, ServiceConfig, TopHit,
};
use ustr_uncertain::UncertainString;

/// Strategy: a small uncertain document over {a, b, c} with random pdfs.
fn uncertain_doc(max_len: usize) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(
        prop::collection::vec((0u8..3, 1u32..100), 1..=3),
        1..=max_len,
    )
    .prop_map(|rows| {
        let rows: Vec<Vec<(u8, f64)>> = rows
            .into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                let total: u32 = row.iter().map(|&(_, w)| w).sum();
                row.into_iter()
                    .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                    .collect()
            })
            .collect();
        UncertainString::from_rows(rows).expect("normalized rows are valid")
    })
}

/// One scripted step: insert the next document, delete the k-th live
/// document, or checkpoint (compare live against a static rebuild).
#[derive(Debug, Clone)]
enum Op {
    Insert(UncertainString),
    Delete(usize),
    Checkpoint,
}

fn ops(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..5, uncertain_doc(10), any::<u8>()), 1..=max_ops).prop_map(|steps| {
        steps
            .into_iter()
            .map(|(kind, doc, pick)| match kind {
                0 | 1 => Op::Insert(doc),
                2 => Op::Delete(pick as usize),
                _ => Op::Checkpoint,
            })
            .collect()
    })
}

/// The mixed-mode batch evaluated at every checkpoint: all four modes.
fn batch() -> Vec<QueryRequest> {
    let mut out = Vec::new();
    for pattern in [&b"a"[..], b"ab", b"ba", b"bc"] {
        out.push(QueryRequest::Threshold {
            pattern: pattern.to_vec(),
            tau: 0.3,
        });
        out.push(QueryRequest::Approx {
            pattern: pattern.to_vec(),
            tau: 0.5,
        });
        out.push(QueryRequest::TopK {
            pattern: pattern.to_vec(),
            k: 3,
        });
        out.push(QueryRequest::Listing {
            pattern: pattern.to_vec(),
            tau: 0.2,
        });
    }
    out
}

/// Translates a static response's dense document ids (0..n over the live
/// documents in ascending stable-id order) to the live stable ids. The
/// translation is monotone, so ordering and tie-breaks are untouched.
fn translate(resp: &QueryResponse, ids: &[u64]) -> QueryResponse {
    match resp {
        QueryResponse::Threshold(h) => QueryResponse::Threshold(Arc::new(
            h.iter()
                .map(|d| DocHits {
                    doc: ids[d.doc] as usize,
                    hits: d.hits.clone(),
                })
                .collect(),
        )),
        QueryResponse::Approx(h) => QueryResponse::Approx(Arc::new(
            h.iter()
                .map(|d| DocHits {
                    doc: ids[d.doc] as usize,
                    hits: d.hits.clone(),
                })
                .collect(),
        )),
        QueryResponse::TopK(h) => QueryResponse::TopK(Arc::new(
            h.iter()
                .map(|t| TopHit {
                    doc: ids[t.doc] as usize,
                    pos: t.pos,
                    prob: t.prob,
                })
                .collect(),
        )),
        QueryResponse::Listing(h) => QueryResponse::Listing(Arc::new(
            h.iter()
                .map(|l| ListingHit {
                    doc: ids[l.doc] as usize,
                    relevance: l.relevance,
                })
                .collect(),
        )),
    }
}

static CASE: AtomicUsize = AtomicUsize::new(0);

fn live_config(threads: usize, seal_threshold: usize, compact_min: usize) -> LiveConfig {
    LiveConfig {
        threads,
        cache_capacity: 8,
        tau_min: 0.1,
        epsilon: None,
        seal_threshold,
        compact_min_segments: compact_min,
    }
}

fn check(live: &LiveService, requests: &[QueryRequest]) -> Result<(), TestCaseError> {
    // Static rebuild from scratch over the current live documents.
    let ids: Vec<u64> = live.live_doc_ids();
    let docs: Vec<UncertainString> = live.live_docs().into_iter().map(|(_, d)| d).collect();
    let stat = QueryService::build(
        &docs,
        live.tau_min(),
        ServiceConfig {
            threads: 1,
            shards: 1,
            cache_capacity: 0,
            epsilon: None,
        },
    )
    .map_err(|e| TestCaseError::fail(format!("static build failed: {e}")))?;
    let want = stat.query_requests_sequential(requests);
    let got_parallel = live.query_requests(requests);
    let got_sequential = live.query_requests_sequential(requests);
    for (q, ((p, s), w)) in got_parallel
        .iter()
        .zip(got_sequential.iter())
        .zip(want.iter())
        .enumerate()
    {
        let p = p.as_ref().expect("live parallel answer");
        let s = s.as_ref().expect("live sequential answer");
        let w = translate(w.as_ref().expect("static answer"), &ids);
        prop_assert_eq!(p, s, "request {}: live parallel != live sequential", q);
        prop_assert_eq!(p, &w, "request {}: live != static rebuild", q);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleaved insert/delete/query at 1 vs 8 threads, with background
    /// seals (threshold 2) and compaction (at 2 segments) racing the
    /// checkpoints.
    #[test]
    fn live_matches_static_rebuild_under_interleaving(script in ops(12)) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let requests = batch();
        for (threads, seal_threshold, compact_min) in [(1, 0, 0), (8, 2, 2)] {
            let dir = std::env::temp_dir().join(format!(
                "ustr_prop_live_{}_{case}_{threads}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let live = LiveService::open(&dir, live_config(threads, seal_threshold, compact_min))
                .map_err(|e| TestCaseError::fail(format!("open failed: {e}")))?;
            for op in &script {
                match op {
                    Op::Insert(doc) => {
                        live.insert(doc.clone())
                            .map_err(|e| TestCaseError::fail(format!("insert failed: {e}")))?;
                    }
                    Op::Delete(pick) => {
                        let ids = live.live_doc_ids();
                        if !ids.is_empty() {
                            let id = ids[pick % ids.len()];
                            live.delete(id)
                                .map_err(|e| TestCaseError::fail(format!("delete failed: {e}")))?;
                        }
                    }
                    Op::Checkpoint => check(&live, &requests)?,
                }
            }
            // Final checkpoints: racing maintenance, then quiesced.
            check(&live, &requests)?;
            live.wait_idle()
                .map_err(|e| TestCaseError::fail(format!("background failure: {e}")))?;
            check(&live, &requests)?;
            drop(live);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
