//! Per-request distributed tracing: propagated contexts, span trees, and
//! a lock-free finished-span ring.
//!
//! A [`Tracer`] hands out per-request [`TraceContext`]s — a 128-bit trace
//! id, the parent span id, and a sampling decision — and records finished
//! [`SpanRecord`]s (name, parent, start/end monotonic nanoseconds, a small
//! fixed-capacity key/value payload) into a fixed-capacity ring, assembled
//! on demand into span trees ([`Tracer::traces`]) and exported as Chrome
//! `trace_event` JSON ([`TraceExporter`], loadable in `chrome://tracing`
//! or Perfetto).
//!
//! Design rules:
//!
//! * **Deterministic sampling, no floats.** The sampler is a pure integer
//!   function of the trace id (an FNV-1a hash compared against a
//!   parts-per-[`SAMPLE_SCALE`] rate), so the same trace id makes the same
//!   decision on every node that sees it, and tracing can never perturb
//!   float-determinism-audited query code.
//! * **Rate-or-always-on-slow.** A trace is kept when the rate sampler
//!   picks its id *or* its root span runs at least
//!   [`Tracer::slow_us`] microseconds — slow outliers are captured even
//!   at a 0% sample rate. Until the root finishes, spans buffer in a
//!   per-trace scratch, so an unsampled fast trace costs no ring traffic.
//! * **One branch per span site when off.** A disabled tracer returns
//!   no-op [`TraceSpan`]s; every operation on them is a tag check.
//! * **The ring never blocks a recorder.** Slots are claimed with one
//!   atomic increment and written under a `try_lock`; a contended slot
//!   drops the span (counted in [`Tracer::dropped_spans`]) instead of
//!   making a request path wait for an exporter.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Maximum key/value attributes one span can carry; pushes past the
/// capacity are dropped (the payload is a fixed-size inline array so hot
/// paths never allocate per attribute).
pub const MAX_SPAN_ATTRS: usize = 8;

/// Sampling rates are expressed in parts per this scale (permyriad:
/// 10 000 = always, 100 = 1%, 0 = never).
pub const SAMPLE_SCALE: u32 = 10_000;

/// Default capacity of the finished-span ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One span attribute value: an integer or a static label — never a float,
/// so traces stay bit-reproducible and lint-clean in determinism-audited
/// crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttrValue {
    /// An integer payload (counts, sizes, ids).
    U64(u64),
    /// A static label (e.g. `cache=hit`).
    Str(&'static str),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Fixed-capacity inline attribute payload (at most [`MAX_SPAN_ATTRS`]
/// entries; extra pushes are silently dropped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttrSet {
    len: u8,
    items: [(&'static str, AttrValue); MAX_SPAN_ATTRS],
}

impl Default for AttrSet {
    fn default() -> Self {
        Self {
            len: 0,
            items: [("", AttrValue::U64(0)); MAX_SPAN_ATTRS],
        }
    }
}

impl AttrSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one attribute; returns `false` (and drops it) when full.
    pub fn push(&mut self, key: &'static str, value: AttrValue) -> bool {
        let Some(slot) = self.items.get_mut(self.len as usize) else {
            return false;
        };
        *slot = (key, value);
        self.len += 1;
        true
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The attributes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(&'static str, AttrValue)> {
        self.items.iter().take(self.len as usize)
    }

    /// First value recorded under `key`, if any.
    pub fn get(&self, key: &str) -> Option<AttrValue> {
        self.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// A propagated trace context: enough to continue one trace on another
/// thread, process, or host (it is what `ustr-net` carries on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span of the trace.
    pub trace_id: u128,
    /// Span id the continuation should parent under (0 = a root).
    pub parent_span: u64,
    /// The originator's sampling decision. Propagated `true` forces the
    /// continuation to record even when the local rate would not.
    pub sampled: bool,
}

/// One finished span, as stored in the ring and slow-query log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u128,
    /// This span's id (unique within the trace, never 0).
    pub span_id: u64,
    /// Parent span id (0 = a trace root).
    pub parent_span: u64,
    /// Static site name (`request`, `cache_lookup`, `segment_answer`, …).
    pub name: &'static str,
    /// Start, in monotonic nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End, same clock. Always `>= start_ns`.
    pub end_ns: u64,
    /// Fixed-capacity key/value payload.
    pub attrs: AttrSet,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    pub fn duration_us(&self) -> u64 {
        self.duration_ns() / 1_000
    }
}

/// FNV-1a 64-bit over the 16 little-endian bytes of a trace id: the pure
/// integer hash behind the deterministic sampling decision.
fn trace_hash(trace_id: u128) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in trace_id.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: the id-sequence whitener.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-trace scratch: spans buffer here until the root finishes and the
/// keep-or-drop decision (sampled, or slow enough) commits them to the
/// ring in one batch.
struct TraceBuf {
    trace_id: u128,
    /// The rate sampler's (or the propagator's) decision; slow-only traces
    /// carry `false` here and are kept only if the root crosses `slow_us`.
    sampled: bool,
    /// Whitened span-id allocator: unique within the process, and spread
    /// so spans minted by a remote continuation cannot collide with the
    /// originator's ids.
    id_base: u64,
    next_seq: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceBuf {
    fn next_span_id(&self) -> u64 {
        // ordering: Relaxed — a private allocator; ids only need uniqueness.
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        mix64(self.id_base ^ seq).max(1)
    }
}

/// Fixed-capacity ring of finished spans. Writers claim a slot with one
/// atomic increment and fill it under a `try_lock` — a contended slot
/// drops the span rather than blocking a request path. Readers (exporters)
/// lock slots normally.
struct SpanRing {
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl SpanRing {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, record: SpanRecord) {
        // ordering: Relaxed — the cursor only distributes slot indices;
        // slot contents are published by the slot's own lock.
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        match self.slots.get(i).map(|s| s.try_lock()) {
            Some(Ok(mut slot)) => *slot = Some(record),
            _ => {
                // ordering: Relaxed — a lossy-telemetry counter.
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn collect(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().ok().and_then(|slot| *slot))
            .collect();
        out.sort_by_key(|r| (r.start_ns, r.span_id));
        out
    }

    fn clear(&self) {
        for slot in self.slots.iter() {
            if let Ok(mut s) = slot.lock() {
                *s = None;
            }
        }
    }
}

/// The tracing subsystem: hands out contexts, buffers live traces, keeps
/// finished spans in a ring. Cheap to share (`Arc`) and cheap when off —
/// every span site is one branch on [`Tracer::enabled`].
pub struct Tracer {
    epoch: Instant,
    seed: u64,
    sample_permyriad: AtomicU32,
    slow_us: AtomicU64,
    next_trace: AtomicU64,
    ring: SpanRing,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A disabled tracer (sample rate 0, no slow threshold) with the
    /// default ring capacity. Enable with [`Tracer::set_sample_permyriad`]
    /// / [`Tracer::set_slow_us`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// As [`Tracer::new`] with an explicit ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        // Seed from a process counter plus wall-clock nanoseconds: trace
        // ids must differ across processes, not be cryptographic.
        static SEEDS: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — a uniqueness counter, nothing synchronizes on it.
        let n = SEEDS.fetch_add(1, Ordering::Relaxed);
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::with_seed_and_capacity(mix64(clock) ^ mix64(n.wrapping_add(0x5eed)), capacity)
    }

    /// Deterministic construction for tests: trace ids and span ids are a
    /// pure function of `seed` and call order.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_seed_and_capacity(seed, DEFAULT_TRACE_CAPACITY)
    }

    fn with_seed_and_capacity(seed: u64, capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            seed,
            sample_permyriad: AtomicU32::new(0),
            slow_us: AtomicU64::new(0),
            next_trace: AtomicU64::new(0),
            ring: SpanRing::new(capacity),
        }
    }

    /// Sets the rate sampler: parts per [`SAMPLE_SCALE`] (clamped).
    pub fn set_sample_permyriad(&self, rate: u32) {
        // ordering: Relaxed — a live-tunable knob; a racing request may use
        // the previous rate.
        self.sample_permyriad
            .store(rate.min(SAMPLE_SCALE), Ordering::Relaxed);
    }

    pub fn sample_permyriad(&self) -> u32 {
        // ordering: Relaxed — see set_sample_permyriad().
        self.sample_permyriad.load(Ordering::Relaxed)
    }

    /// Sets the always-on-slow threshold: any trace whose root runs at
    /// least this many microseconds is kept regardless of the rate
    /// sampler. 0 disables the slow path.
    pub fn set_slow_us(&self, us: u64) {
        // ordering: Relaxed — a live-tunable knob.
        self.slow_us.store(us, Ordering::Relaxed);
    }

    pub fn slow_us(&self) -> u64 {
        // ordering: Relaxed — see set_slow_us().
        self.slow_us.load(Ordering::Relaxed)
    }

    /// `true` when any span could be recorded — the one branch a span site
    /// pays when tracing is off.
    pub fn enabled(&self) -> bool {
        self.sample_permyriad() > 0 || self.slow_us() > 0
    }

    /// Spans lost to ring-slot contention since construction.
    pub fn dropped_spans(&self) -> u64 {
        // ordering: Relaxed — a lossy-telemetry counter.
        self.ring.dropped.load(Ordering::Relaxed)
    }

    /// The deterministic rate decision for `trace_id`: a pure integer
    /// function (hash mod [`SAMPLE_SCALE`] under the rate), so every node
    /// that sees the same id decides the same way and replays reproduce
    /// the same sampled set. No floats anywhere.
    pub fn would_sample(&self, trace_id: u128) -> bool {
        let rate = self.sample_permyriad();
        rate > 0 && (trace_hash(trace_id) % u64::from(SAMPLE_SCALE)) < u64::from(rate)
    }

    /// Monotonic nanoseconds since this tracer was created (the clock all
    /// its spans share).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn fresh_trace_id(&self) -> u128 {
        // ordering: Relaxed — a uniqueness counter.
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        let hi = mix64(self.seed ^ n);
        let lo = mix64(n.wrapping_add(self.seed).wrapping_add(0x0bad_5eed));
        (u128::from(hi) << 64) | u128::from(lo.max(1))
    }

    /// Opens a root span for a fresh trace. Returns a no-op span unless
    /// the tracer is [enabled](Tracer::enabled); when the rate sampler
    /// skips the id but a slow threshold is set, the trace records
    /// speculatively and commits only if the root turns out slow.
    pub fn root_span(self: &Arc<Self>, name: &'static str) -> TraceSpan {
        if !self.enabled() {
            return TraceSpan::disabled();
        }
        let trace_id = self.fresh_trace_id();
        let sampled = self.would_sample(trace_id);
        if !sampled && self.slow_us() == 0 {
            return TraceSpan::disabled();
        }
        self.start_span(name, trace_id, 0, sampled)
    }

    /// Continues a propagated trace (e.g. a context carried on a network
    /// request) under a new local root span. The propagated sampling
    /// decision wins: `ctx.sampled` records even at a 0% local rate.
    pub fn continue_span(self: &Arc<Self>, name: &'static str, ctx: TraceContext) -> TraceSpan {
        let sampled = ctx.sampled || self.would_sample(ctx.trace_id);
        if !sampled && self.slow_us() == 0 {
            return TraceSpan::disabled();
        }
        self.start_span(name, ctx.trace_id, ctx.parent_span, sampled)
    }

    fn start_span(
        self: &Arc<Self>,
        name: &'static str,
        trace_id: u128,
        parent_span: u64,
        sampled: bool,
    ) -> TraceSpan {
        let buf = Arc::new(TraceBuf {
            trace_id,
            sampled,
            id_base: mix64(self.seed ^ (trace_id as u64) ^ parent_span),
            next_seq: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
        });
        let span_id = buf.next_span_id();
        TraceSpan {
            inner: Some(SpanInner {
                tracer: Arc::clone(self),
                buf,
                span_id,
                parent_span,
                name,
                start_ns: self.now_ns(),
                attrs: AttrSet::new(),
                root: true,
            }),
        }
    }

    /// Every span currently in the ring, ordered by start time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.ring.collect()
    }

    /// The ring's contents assembled into per-trace span trees, ordered by
    /// each trace's earliest span.
    pub fn traces(&self) -> Vec<TraceTree> {
        assemble_traces(&self.spans())
    }

    /// Empties the ring (the exporter's "consume what I just rendered").
    pub fn clear(&self) {
        self.ring.clear();
    }
}

struct SpanInner {
    tracer: Arc<Tracer>,
    buf: Arc<TraceBuf>,
    span_id: u64,
    parent_span: u64,
    name: &'static str,
    start_ns: u64,
    attrs: AttrSet,
    root: bool,
}

/// A finished root span's trace: the spans it committed (or would have —
/// `kept` says whether the ring took them) and the root duration, handed
/// back so callers can reuse the tree (e.g. for a slow-query log entry)
/// without re-reading the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinishedTrace {
    pub trace_id: u128,
    /// Root span duration in microseconds.
    pub duration_us: u64,
    /// Whether the trace was committed to the ring (sampled, or slow
    /// enough for the always-on-slow path).
    pub kept: bool,
    /// Every span of the trace, root included, ordered by start time.
    pub spans: Vec<SpanRecord>,
}

/// One live span. All operations are no-ops on a disabled span, so span
/// sites need no `if tracing` guards of their own. Dropping a span records
/// it; roots commit (or discard) their whole trace when they finish.
pub struct TraceSpan {
    inner: Option<SpanInner>,
}

impl TraceSpan {
    /// The no-op span (what span sites get when tracing is off).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// `true` when this span will produce a record.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The context a continuation (another thread or host) should carry to
    /// parent under this span. `None` when disabled.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|i| TraceContext {
            trace_id: i.buf.trace_id,
            parent_span: i.span_id,
            sampled: i.buf.sampled,
        })
    }

    /// Opens a child span (same trace, parented under this span). Children
    /// of a disabled span are disabled.
    pub fn child(&self, name: &'static str) -> TraceSpan {
        let Some(inner) = &self.inner else {
            return TraceSpan::disabled();
        };
        TraceSpan {
            inner: Some(SpanInner {
                tracer: Arc::clone(&inner.tracer),
                buf: Arc::clone(&inner.buf),
                span_id: inner.buf.next_span_id(),
                parent_span: inner.span_id,
                name: inner.name_for_child(name),
                start_ns: inner.tracer.now_ns(),
                attrs: AttrSet::new(),
                root: false,
            }),
        }
    }

    /// Resets the start time to now — for spans created ahead of a queue
    /// hop whose measured region only begins when a worker picks them up.
    pub fn restart(&mut self) {
        if let Some(inner) = &mut self.inner {
            inner.start_ns = inner.tracer.now_ns();
        }
    }

    /// Attaches an integer attribute (dropped beyond [`MAX_SPAN_ATTRS`]).
    pub fn set_u64(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push(key, AttrValue::U64(value));
        }
    }

    /// Attaches a static-label attribute (dropped beyond
    /// [`MAX_SPAN_ATTRS`]).
    pub fn set_str(&mut self, key: &'static str, value: &'static str) {
        if let Some(inner) = &mut self.inner {
            inner.attrs.push(key, AttrValue::Str(value));
        }
    }

    /// Records an already-measured child directly (explicit timestamps,
    /// tracer clock). For stages timed once but attributed to several
    /// requests' traces, where a live child span per request would
    /// re-measure the same region.
    pub fn add_child_at(
        &self,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut set = AttrSet::new();
        for &(k, v) in attrs {
            set.push(k, v);
        }
        let record = SpanRecord {
            trace_id: inner.buf.trace_id,
            span_id: inner.buf.next_span_id(),
            parent_span: inner.span_id,
            name,
            start_ns,
            end_ns: end_ns.max(start_ns),
            attrs: set,
        };
        if let Ok(mut spans) = inner.buf.spans.lock() {
            spans.push(record);
        }
    }

    /// Finishes the span, returning its duration in microseconds (0 when
    /// disabled). Root spans decide keep-or-drop for the whole trace here.
    pub fn finish(mut self) -> u64 {
        match self.finish_inner() {
            Some(t) => t.duration_us,
            None => 0,
        }
    }

    /// Finishes a root span and hands back the whole trace (`None` when
    /// disabled). Non-root spans return a single-span trace with
    /// `kept = false` (their records live on in the trace buffer).
    pub fn finish_trace(mut self) -> Option<FinishedTrace> {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> Option<FinishedTrace> {
        let inner = self.inner.take()?;
        let end_ns = inner.tracer.now_ns();
        let record = SpanRecord {
            trace_id: inner.buf.trace_id,
            span_id: inner.span_id,
            parent_span: inner.parent_span,
            name: inner.name,
            start_ns: inner.start_ns,
            end_ns,
            attrs: inner.attrs,
        };
        let duration_us = record.duration_us();
        if !inner.root {
            if let Ok(mut spans) = inner.buf.spans.lock() {
                spans.push(record);
            }
            return Some(FinishedTrace {
                trace_id: record.trace_id,
                duration_us,
                kept: false,
                spans: vec![record],
            });
        }
        // Root: the trace is complete — decide, then commit in one batch.
        let slow_us = inner.tracer.slow_us();
        let kept = inner.buf.sampled || (slow_us > 0 && duration_us >= slow_us);
        let mut spans = inner
            .buf
            .spans
            .lock()
            .map(|mut s| std::mem::take(&mut *s))
            .unwrap_or_default();
        spans.push(record);
        spans.sort_by_key(|r| (r.start_ns, r.span_id));
        if kept {
            for span in &spans {
                inner.tracer.ring.push(*span);
            }
        }
        Some(FinishedTrace {
            trace_id: record.trace_id,
            duration_us,
            kept,
            spans,
        })
    }
}

impl SpanInner {
    /// Child spans keep their own site name; this hook exists so the
    /// borrow in [`TraceSpan::child`] stays trivially copyable.
    fn name_for_child(&self, name: &'static str) -> &'static str {
        name
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let _ = self.finish_inner();
    }
}

/// One span plus its children, in start order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceNode {
    pub span: SpanRecord,
    pub children: Vec<TraceNode>,
}

/// All spans of one trace, assembled into root trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTree {
    pub trace_id: u128,
    /// Root nodes (parent 0, or parent not present in the span set —
    /// e.g. the server half of a propagated trace), in start order.
    pub roots: Vec<TraceNode>,
}

impl TraceTree {
    /// Spans in the tree (all roots, recursively).
    pub fn len(&self) -> usize {
        fn count(n: &TraceNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Depth-first search for a span by name.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        fn walk<'a>(n: &'a TraceNode, name: &str) -> Option<&'a TraceNode> {
            if n.span.name == name {
                return Some(n);
            }
            n.children.iter().find_map(|c| walk(c, name))
        }
        self.roots.iter().find_map(|r| walk(r, name))
    }
}

/// Groups `spans` by trace id and builds parent/child trees. A span whose
/// parent id is absent from its trace's span set becomes a root (the
/// remote half of a propagated trace looks exactly like this). Traces are
/// ordered by their earliest span, trees by start time.
pub fn assemble_traces(spans: &[SpanRecord]) -> Vec<TraceTree> {
    use std::collections::BTreeMap;
    // Group, keeping input (start-time) order within each trace.
    let mut by_trace: BTreeMap<u128, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        by_trace.entry(s.trace_id).or_default().push(s);
    }
    let mut traces: Vec<TraceTree> = Vec::with_capacity(by_trace.len());
    for (trace_id, members) in by_trace {
        let present: std::collections::BTreeSet<u64> = members.iter().map(|s| s.span_id).collect();
        // children[parent] = spans parented there, in start order.
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for s in &members {
            if s.parent_span != 0 && present.contains(&s.parent_span) {
                children.entry(s.parent_span).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        fn build(span: &SpanRecord, children: &BTreeMap<u64, Vec<&SpanRecord>>) -> TraceNode {
            TraceNode {
                span: *span,
                children: children
                    .get(&span.span_id)
                    .map(|kids| kids.iter().map(|k| build(k, children)).collect())
                    .unwrap_or_default(),
            }
        }
        traces.push(TraceTree {
            trace_id,
            roots: roots.iter().map(|r| build(r, &children)).collect(),
        });
    }
    traces.sort_by_key(|t| {
        t.roots
            .first()
            .map(|r| (r.span.start_ns, r.span.span_id))
            .unwrap_or((u64::MAX, u64::MAX))
    });
    traces
}

/// Renders one trace as an indented text tree (`name duration [attrs]`
/// per line) — the slow-query log's span-tree form.
pub fn render_tree(tree: &TraceTree) -> String {
    fn walk(node: &TraceNode, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(node.span.name);
        out.push(' ');
        out.push_str(&node.span.duration_us().to_string());
        out.push_str("us");
        if !node.span.attrs.is_empty() {
            out.push_str(" [");
            for (i, (k, v)) in node.span.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(k);
                out.push('=');
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        out.push('\n');
        for child in &node.children {
            walk(child, depth + 1, out);
        }
    }
    let mut out = String::new();
    for root in &tree.roots {
        walk(root, 0, &mut out);
    }
    out
}

/// Renders span trees as Chrome `trace_event` JSON: an object with a
/// `traceEvents` array of complete (`"ph":"X"`) events, timestamps and
/// durations in integer microseconds, one `tid` track per trace. Loadable
/// in `chrome://tracing` and Perfetto; parseable by the workspace's bench
/// gate JSON reader.
pub fn chrome_trace_json(traces: &[TraceTree]) -> String {
    use std::fmt::Write as _;
    fn push_event(out: &mut String, node: &TraceNode, tid: usize, first: &mut bool) {
        let span = &node.span;
        let sep = if *first { "" } else { "," };
        *first = false;
        let _ = write!(
            out,
            "{sep}\n    {{\"name\": \"{}\", \"cat\": \"ustr\", \"ph\": \"X\", \
             \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\
             \"trace_id\": \"{:032x}\", \"span_id\": \"{:016x}\", \"parent_span\": \"{:016x}\"",
            crate::metrics::escape_json(span.name),
            span.start_ns / 1_000,
            span.duration_ns().div_ceil(1_000).max(1),
            tid,
            span.trace_id,
            span.span_id,
            span.parent_span,
        );
        for (k, v) in span.attrs.iter() {
            let key = crate::metrics::escape_json(k);
            match v {
                AttrValue::U64(n) => {
                    let _ = write!(out, ", \"{key}\": {n}");
                }
                AttrValue::Str(s) => {
                    let _ = write!(out, ", \"{key}\": \"{}\"", crate::metrics::escape_json(s));
                }
            }
        }
        out.push_str("}}");
        for child in &node.children {
            push_event(out, child, tid, first);
        }
    }
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
    let mut first = true;
    for (i, tree) in traces.iter().enumerate() {
        for root in &tree.roots {
            push_event(&mut out, root, i + 1, &mut first);
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders a [`Tracer`]'s sampled traces for export: Chrome `trace_event`
/// JSON for tooling, indented text for humans.
pub struct TraceExporter {
    tracer: Arc<Tracer>,
}

impl TraceExporter {
    pub fn new(tracer: Arc<Tracer>) -> Self {
        Self { tracer }
    }

    /// The ring's traces as Chrome `trace_event` JSON (see
    /// [`chrome_trace_json`]). Always a valid JSON document, even when the
    /// ring is empty.
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(&self.tracer.traces())
    }

    /// The ring's traces as indented text trees, one blank-line-separated
    /// block per trace.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (i, tree) in self.tracer.traces().iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("trace {:032x}\n", tree.trace_id));
            out.push_str(&render_tree(tree));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on_tracer() -> Arc<Tracer> {
        let t = Arc::new(Tracer::with_seed(42));
        t.set_sample_permyriad(SAMPLE_SCALE); // 100%
        t
    }

    #[test]
    fn disabled_tracer_records_nothing_and_spans_are_noops() {
        let t = Arc::new(Tracer::with_seed(1));
        assert!(!t.enabled());
        let mut root = t.root_span("request");
        assert!(!root.is_recording());
        assert!(root.context().is_none());
        root.set_u64("candidates", 5);
        let child = root.child("stage");
        assert!(!child.is_recording());
        assert_eq!(child.finish(), 0);
        assert!(root.finish_trace().is_none());
        assert!(t.spans().is_empty());
    }

    #[test]
    fn sampler_is_deterministic_per_trace_id_and_respects_rate() {
        let t = Tracer::with_seed(7);
        t.set_sample_permyriad(SAMPLE_SCALE / 2);
        let decisions: Vec<bool> = (0..2000u128).map(|id| t.would_sample(id)).collect();
        // Pure function of the id: same answers on a second pass and on a
        // different tracer with a different seed.
        let t2 = Tracer::with_seed(999);
        t2.set_sample_permyriad(SAMPLE_SCALE / 2);
        for (id, &d) in decisions.iter().enumerate() {
            assert_eq!(t.would_sample(id as u128), d);
            assert_eq!(t2.would_sample(id as u128), d);
        }
        // A 50% rate lands in a plausible band over 2000 hashed ids.
        let hits = decisions.iter().filter(|&&d| d).count();
        assert!((700..1300).contains(&hits), "hits = {hits}");
        // Boundary rates.
        t.set_sample_permyriad(0);
        assert!(!t.would_sample(3));
        t.set_sample_permyriad(SAMPLE_SCALE);
        assert!(t.would_sample(3));
    }

    #[test]
    fn span_tree_assembles_parent_child_structure() {
        let t = on_tracer();
        let mut root = t.root_span("request");
        assert!(root.is_recording());
        root.set_str("mode", "threshold");
        let mut lookup = root.child("cache_lookup");
        lookup.set_str("cache", "miss");
        lookup.finish();
        let fanout = root.child("fanout");
        let mut seg = fanout.child("segment_answer");
        seg.set_u64("candidates", 17);
        seg.set_u64("verified", 3);
        seg.finish();
        fanout.finish();
        root.add_child_at("merge", t.now_ns(), t.now_ns(), &[]);
        let finished = root.finish_trace().expect("recording root");
        assert!(finished.kept);
        assert_eq!(finished.spans.len(), 5);

        let traces = t.traces();
        assert_eq!(traces.len(), 1);
        let tree = &traces[0];
        assert_eq!(tree.len(), 5);
        let root_node = &tree.roots[0];
        assert_eq!(root_node.span.name, "request");
        assert_eq!(
            root_node.span.attrs.get("mode"),
            Some(AttrValue::Str("threshold"))
        );
        assert_eq!(root_node.children.len(), 3);
        let seg_node = tree.find("segment_answer").expect("segment span");
        assert_eq!(
            seg_node.span.attrs.get("candidates"),
            Some(AttrValue::U64(17))
        );
        assert_eq!(seg_node.span.attrs.get("verified"), Some(AttrValue::U64(3)));
        // The segment span parents under fanout, which parents under root.
        let fanout_node = tree.find("fanout").expect("fanout span");
        assert_eq!(seg_node.span.parent_span, fanout_node.span.span_id);
        assert_eq!(fanout_node.span.parent_span, root_node.span.span_id);
    }

    #[test]
    fn rate_zero_with_slow_threshold_keeps_only_slow_traces() {
        let t = Arc::new(Tracer::with_seed(11));
        t.set_slow_us(5_000); // keep only traces >= 5ms; rate stays 0
        assert!(t.enabled());
        // Fast trace: recorded speculatively, dropped at the root.
        let fast = t.root_span("request");
        assert!(fast.is_recording());
        let finished = fast.finish_trace().expect("speculative root");
        assert!(!finished.kept);
        assert!(t.spans().is_empty());
        // "Slow" trace: simulate by lowering the bar to 0us mid-flight —
        // the keep decision reads the threshold at the root's finish.
        let slow = t.root_span("request");
        t.set_slow_us(1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let finished = slow.finish_trace().expect("speculative root");
        assert!(finished.kept);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn propagated_context_forces_recording_and_links_parents() {
        let server = Arc::new(Tracer::with_seed(5)); // rate 0, slow 0: off
        let client = on_tracer();
        let client_root = client.root_span("client_request");
        let ctx = client_root.context().expect("recording");
        assert!(ctx.sampled);
        // The server tracer would record nothing on its own...
        assert!(!server.enabled());
        // ...but the propagated decision wins.
        let remote = server.continue_span("request", ctx);
        assert!(remote.is_recording());
        let finished = remote.finish_trace().expect("continued root");
        assert!(finished.kept);
        assert_eq!(finished.trace_id, ctx.trace_id);
        let spans = server.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent_span, ctx.parent_span);
        // Assembly treats the server half as a root (its parent span lives
        // on the client).
        let trees = server.traces();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].roots.len(), 1);
    }

    #[test]
    fn ring_is_bounded_and_lossy_not_blocking() {
        let t = Arc::new(Tracer::with_seed(3));
        let small = Arc::new(Tracer::with_seed_and_capacity(9, 8));
        small.set_sample_permyriad(SAMPLE_SCALE);
        for _ in 0..100 {
            small.root_span("request").finish();
        }
        assert!(small.spans().len() <= 8);
        drop(t);
    }

    #[test]
    fn attrs_cap_at_fixed_capacity() {
        let mut set = AttrSet::new();
        for i in 0..(MAX_SPAN_ATTRS as u64 + 4) {
            set.push("k", AttrValue::U64(i));
        }
        assert_eq!(set.len(), MAX_SPAN_ATTRS);
        let t = on_tracer();
        let mut root = t.root_span("request");
        for i in 0..20 {
            root.set_u64("x", i);
        }
        let finished = root.finish_trace().expect("recording");
        assert_eq!(finished.spans[0].attrs.len(), MAX_SPAN_ATTRS);
    }

    #[test]
    fn chrome_export_is_structurally_valid_json() {
        let t = on_tracer();
        let mut root = t.root_span("request");
        root.set_str("mode", "threshold");
        let mut seg = root.child("segment_answer");
        seg.set_u64("candidates", 9);
        seg.finish();
        root.finish();
        let json = TraceExporter::new(Arc::clone(&t)).chrome_json();
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"segment_answer\""));
        assert!(json.contains("\"candidates\": 9"));
        // Balanced braces/brackets (cheap structural check; the bench
        // gate's real JSON parser validates this same output in the CLI
        // and net integration tests).
        let braces = json.matches('{').count() == json.matches('}').count();
        let brackets = json.matches('[').count() == json.matches(']').count();
        assert!(braces && brackets);
        // Empty ring still renders a valid document.
        t.clear();
        let empty = TraceExporter::new(t).chrome_json();
        assert!(empty.contains("\"traceEvents\": [\n  ]"));
    }

    #[test]
    fn render_tree_indents_children_with_attrs() {
        let t = on_tracer();
        let mut root = t.root_span("request");
        let mut child = root.child("cache_lookup");
        child.set_str("cache", "hit");
        child.finish();
        root.set_str("mode", "top_k");
        root.finish();
        let trees = t.traces();
        let text = render_tree(&trees[0]);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("request "));
        assert!(lines[0].contains("[mode=top_k]"));
        assert!(lines[1].starts_with("  cache_lookup "));
        assert!(lines[1].contains("[cache=hit]"));
    }

    #[test]
    fn dropped_spans_never_block_and_are_counted() {
        // Hold a slot's lock while a recorder writes into it: the push
        // must not block, and the loss is visible in the counter.
        let t = Arc::new(Tracer::with_seed_and_capacity(13, 1));
        t.set_sample_permyriad(SAMPLE_SCALE);
        let guard = t.ring.slots[0].lock().unwrap();
        t.root_span("request").finish();
        drop(guard);
        assert_eq!(t.dropped_spans(), 1);
        assert!(t.spans().is_empty());
    }
}
