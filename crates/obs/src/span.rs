//! Lightweight timing spans: start a clock, record the elapsed
//! microseconds into a histogram when finished (or dropped).

use crate::metrics::{global, Histogram};
use std::time::Instant;

/// A started stage timer. Records elapsed **microseconds** into its
/// histogram exactly once — on [`finish`](Span::finish) or on drop,
/// whichever comes first. Hot paths should pre-create the histogram
/// handle and use [`Span::on`]; [`Span::enter`] resolves the name in the
/// [global](crate::global) registry, which takes the registry lock.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    start: Instant,
    armed: bool,
}

impl Span {
    /// Starts a span recording into `global().histogram(name)`.
    pub fn enter(name: &str) -> Span {
        Span::on(global().histogram(name))
    }

    /// Starts a span recording into an existing histogram handle.
    pub fn on(histogram: Histogram) -> Span {
        Span {
            histogram,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Microseconds since the span started (saturating).
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed time and returns it in microseconds.
    pub fn finish(mut self) -> u64 {
        let us = self.elapsed_us();
        self.histogram.record(us);
        self.armed = false;
        us
    }

    /// Forgets the span without recording anything.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.record(self.elapsed_us());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_once() {
        let h = Histogram::new();
        let span = Span::on(h.clone());
        let us = span.finish();
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, us);
    }

    #[test]
    fn drop_records_and_cancel_does_not() {
        let h = Histogram::new();
        {
            let _span = Span::on(h.clone());
        }
        assert_eq!(h.snapshot().count, 1);
        Span::on(h.clone()).cancel();
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn enter_uses_the_global_registry() {
        let span = Span::enter("obs.test.span_us");
        span.finish();
        let snap = global().snapshot();
        assert!(snap.histograms["obs.test.span_us"].count >= 1);
    }
}
