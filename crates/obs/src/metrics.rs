//! Atomic metric primitives and the registry that names them.
//!
//! The record path is lock-free: every handle is an `Arc` around plain
//! atomics, updated with `Relaxed` ordering. The registry's mutex is only
//! taken when a handle is created, registered, or a snapshot is assembled —
//! never per observation. Snapshots are plain data: mergeable, comparable,
//! and rendered deterministically (counters, gauges, and histograms each
//! sorted by name) so two snapshots of the same state produce identical
//! bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two up
/// to 2^63. Bucket `i > 0` covers `[2^(i-1), 2^i)`, so every power of two
/// is the exact lower boundary of its bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value (`0` only for the value zero).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower boundary of bucket `i` (the value reported by
/// [`HistogramSnapshot::quantile`] for observations landing in it).
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Monotonically increasing `u64`. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        // ordering: Relaxed — an independent monotonic counter; no other
        // memory depends on its value.
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — see inc().
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — snapshot reads tolerate racing increments.
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (e.g. open connections, in-flight permits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        // ordering: Relaxed — a gauge is a standalone last-write-wins cell.
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        // ordering: Relaxed — see set().
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        // ordering: Relaxed — see set().
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        // ordering: Relaxed — snapshot reads tolerate racing updates.
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Fixed-bucket log2-scale histogram. Recording is three relaxed atomic
/// adds; no locks, no allocation. Values are unitless `u64`s — by
/// convention the workspace records microseconds (`*_us` names) or
/// nanoseconds (`*_ns` names).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        // ordering: Relaxed — independent monotone counters; a racing snapshot may see a partial sample.
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the cells. Concurrent recorders may land
    /// between the loads, but every completed `record` is eventually
    /// visible and no count is ever lost.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // ordering: Relaxed — tearing across the cells is accepted; each is a monotone reading.
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable and comparable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Per-bucket addition; associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Lower boundary of the bucket holding the `q`-quantile observation
    /// (rank `ceil(q * count)`). Exact when every recorded value is a
    /// power of two; otherwise within 2x below the true value. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(HISTOGRAM_BUCKETS - 1)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values, rounded down. 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named metric handles. `counter`/`gauge`/`histogram` get-or-create (the
/// same name always yields handles sharing one cell); `register_*` insert
/// an externally owned handle under a name, replacing any previous owner
/// (last registration wins — a serving process registers its engine's
/// counters once; concurrent test engines harmlessly overwrite each
/// other because tests never assert the shared registry).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn register_counter(&self, name: &str, counter: &Counter) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.insert(name.to_string(), counter.clone());
    }

    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(name.to_string(), gauge.clone());
    }

    pub fn register_histogram(&self, name: &str, histogram: &Histogram) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.histograms.insert(name.to_string(), histogram.clone());
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Process-wide registry. Per-instance components (an `Engine`, a
/// `NetServer`) keep their own registries so tests stay isolated; the
/// global one aggregates process-scoped metrics such as kernel counters.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Point-in-time copy of a registry, in plain sorted maps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters/gauges add, histograms merge
    /// per bucket. Associative, so snapshots from many sources can be
    /// combined in any grouping.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += *v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += *v;
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Prometheus-style plaintext exposition. Deterministic: names are
    /// sorted, no timestamps, and histogram buckets are emitted
    /// cumulatively up to the highest non-empty bucket. Metric names are
    /// sanitized (`[^a-zA-Z0-9_:]` → `_`) and prefixed with `ustr_`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE ustr_{n} counter");
            let _ = writeln!(out, "ustr_{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE ustr_{n} gauge");
            let _ = writeln!(out, "ustr_{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE ustr_{n} summary");
            let _ = writeln!(out, "ustr_{n}_count {}", h.count);
            let _ = writeln!(out, "ustr_{n}_sum {}", h.sum);
            for (q, label) in [(h.p50(), "0.5"), (h.p90(), "0.9"), (h.p99(), "0.99")] {
                let _ = writeln!(out, "ustr_{n}{{quantile=\"{label}\"}} {q}");
            }
            let top = h.buckets.iter().rposition(|&b| b != 0).unwrap_or(0);
            let mut cumulative = 0u64;
            for i in 0..=top {
                cumulative += h.buckets[i];
                let _ = writeln!(
                    out,
                    "ustr_{n}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_ceiling_label(i)
                );
            }
            let _ = writeln!(out, "ustr_{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        }
        out
    }

    /// Deterministic JSON rendering (sorted maps, integer values) for
    /// artifacts such as `BENCH_metrics.json`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(k));
            first = false;
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape_json(k));
            first = false;
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &self.histograms {
            let sep = if first { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                escape_json(k),
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99()
            );
            first = false;
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Exclusive upper bound of bucket `i`, as the exposition `le` label.
fn bucket_ceiling_label(i: usize) -> String {
    if i == 0 {
        "0".to_string()
    } else if i >= 64 {
        "+Inf".to_string()
    } else {
        format!("{}", (1u64 << i) - 1)
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        // Every power of two starts its own bucket...
        for k in 0..64u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_floor(bucket_index(v)), v, "2^{k}");
            // ...and the value just below it belongs to the bucket below.
            if v > 1 {
                assert!(bucket_index(v - 1) < bucket_index(v));
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_floor(0), 0);
        // A histogram of pure powers reports them back exactly.
        let h = Histogram::new();
        for k in 0..10u32 {
            h.record(1u64 << k);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.p50(), 16);
        assert_eq!(s.quantile(1.0), 512);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(8);
        }
        h.record(1 << 20);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), 8);
        assert_eq!(s.p90(), 8);
        // rank ceil(0.99*100)=99 is still the 8s; the outlier is rank 100.
        assert_eq!(s.p99(), 8);
        assert_eq!(s.quantile(1.0), 1 << 20);
        assert_eq!(s.mean(), (99 * 8 + (1 << 20)) / 100);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let s = Histogram::new().snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0, "q={q}");
        }
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // One sample is rank 1 at every q: p50 and p99 agree, at the
        // bucket floor of 1000 (512..1024 → 512).
        assert_eq!(s.p50(), s.p99());
        assert_eq!(s.p50(), bucket_floor(bucket_index(1000)));
        assert_eq!(s.p50(), 512);
        assert_eq!(s.mean(), 1000);
        // A power-of-two single sample reports itself exactly.
        let h = Histogram::new();
        h.record(4096);
        let s = h.snapshot();
        assert_eq!(s.p50(), 4096);
        assert_eq!(s.p99(), 4096);
    }

    #[test]
    fn bucket_boundary_values_at_powers_of_two_split_cleanly() {
        // 2^k and 2^k - 1 land in adjacent buckets for every k; the
        // histogram's quantiles see the split.
        for k in 1..63u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), bucket_index(v - 1) + 1, "2^{k}");
            assert_eq!(bucket_floor(bucket_index(v)), v);
            assert!(bucket_floor(bucket_index(v - 1)) < v);
        }
        // u64::MAX stays inside the top bucket rather than overflowing.
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.quantile(1.0), bucket_floor(HISTOGRAM_BUCKETS - 1));
    }

    #[test]
    fn snapshot_merge_with_disjoint_bucket_ranges() {
        // One histogram entirely in the low buckets, one entirely in the
        // high ones: the merge keeps both populations intact and its
        // quantiles walk from one range into the other.
        let low = Histogram::new();
        for _ in 0..60 {
            low.record(4); // bucket for 4..8
        }
        let high = Histogram::new();
        for _ in 0..40 {
            high.record(1 << 30);
        }
        let mut merged = low.snapshot();
        merged.merge(&high.snapshot());
        assert_eq!(merged.count, 100);
        assert_eq!(merged.sum, 60 * 4 + 40 * (1u64 << 30));
        // No bucket between the two populated ones gained mass.
        let lo_i = bucket_index(4);
        let hi_i = bucket_index(1 << 30);
        assert_eq!(merged.buckets[lo_i], 60);
        assert_eq!(merged.buckets[hi_i], 40);
        for (i, &b) in merged.buckets.iter().enumerate() {
            if i != lo_i && i != hi_i {
                assert_eq!(b, 0, "bucket {i}");
            }
        }
        // rank 50 ≤ 60 → low range; rank 99 > 60 → high range.
        assert_eq!(merged.p50(), 4);
        assert_eq!(merged.p99(), 1 << 30);
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 1000]);
        let b = mk(&[0, 0, 7, 1 << 40]);
        let c = mk(&[3]);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // b ⊕ a == a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(left.count, 8);
        assert_eq!(left.sum, a.sum + b.sum + c.sum);
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        let h = Histogram::new();
        let c = Counter::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                        c.inc();
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.buckets.iter().sum::<u64>(), threads * per_thread);
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn registry_get_or_create_shares_cells_and_register_replaces() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("x").get(), 7);

        let mine = Counter::new();
        mine.add(100);
        reg.register_counter("x", &mine);
        assert_eq!(reg.counter("x").get(), 100);

        reg.gauge("g").set(-5);
        reg.histogram("h").record(8);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x"], 100);
        assert_eq!(snap.gauges["g"], -5);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn snapshot_merge_folds_by_name() {
        let r1 = MetricsRegistry::new();
        let r2 = MetricsRegistry::new();
        r1.counter("c").add(2);
        r2.counter("c").add(5);
        r2.counter("only2").add(1);
        r1.histogram("h").record(4);
        r2.histogram("h").record(4);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot());
        assert_eq!(s.counters["c"], 7);
        assert_eq!(s.counters["only2"], 1);
        assert_eq!(s.histograms["h"].count, 2);
    }

    #[test]
    fn render_text_is_deterministic_and_parseable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("net.frames_in").add(42);
        reg.gauge("net.conns_open").set(3);
        reg.histogram("service.request_us").record(128);
        let snap = reg.snapshot();
        let a = snap.render_text();
        let b = snap.render_text();
        assert_eq!(a, b);
        assert!(a.contains("ustr_net_frames_in 42"));
        assert!(a.contains("ustr_net_conns_open 3"));
        assert!(a.contains("ustr_service_request_us_count 1"));
        assert!(a.contains("quantile=\"0.99\""));
        assert!(a.contains("ustr_service_request_us_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn render_json_is_valid_enough_for_the_gate_parser() {
        let reg = MetricsRegistry::new();
        reg.counter("a\"b").add(1);
        reg.histogram("h").record(1000);
        let json = reg.snapshot().render_json();
        assert!(json.contains("\"a\\\"b\": 1"));
        assert!(json.contains("\"p50\": 512"));
        assert!(json.ends_with("}\n"));
    }
}
