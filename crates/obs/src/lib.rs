//! # ustr-obs
//!
//! Std-only, zero-dependency telemetry for the uncertain-strings
//! workspace: named atomic [counters](Counter)/[gauges](Gauge) and
//! log2-bucketed latency [histograms](Histogram) in a
//! [`MetricsRegistry`], a [`Span`] timer for per-stage query-lifecycle
//! tracing, a ring-buffered [`SlowQueryLog`], a per-request distributed
//! tracing subsystem ([`Tracer`] / [`TraceSpan`] / [`TraceExporter`]
//! with Chrome `trace_event` export), and a plaintext Prometheus-style
//! exposition endpoint ([`MetricsServer`]).
//!
//! Design rules, enforced throughout the workspace:
//!
//! * **Lock-free record path.** Every observation is a handful of
//!   `Relaxed` atomic adds on pre-created handles; registry locks are
//!   taken only at handle creation and snapshot time.
//! * **Instance-scoped registries for served stats.** Components that
//!   answer a `Stats` request (an engine, a net server) keep their own
//!   [`MetricsRegistry`] so concurrent instances (e.g. parallel tests)
//!   never bleed into each other's snapshots — which is what makes two
//!   idle scrapes byte-identical. The [`global`] registry aggregates
//!   process-scoped metrics (kernel counters) for the exposition
//!   endpoint.
//! * **Deterministic rendering.** [`MetricsSnapshot`] is sorted maps;
//!   [`render_text`](MetricsSnapshot::render_text) and
//!   [`render_json`](MetricsSnapshot::render_json) carry no timestamps,
//!   so identical states render to identical bytes.

#![forbid(unsafe_code)]

mod expose;
mod metrics;
mod slowlog;
mod span;
mod trace;

pub use expose::{scrape, scrape_path, MetricsServer, SnapshotFn, TextFn};
pub use metrics::{
    bucket_floor, bucket_index, global, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use slowlog::{
    SlowQueryEntry, SlowQueryLog, DEFAULT_SLOW_QUERY_CAPACITY, DEFAULT_SLOW_QUERY_US,
};
pub use span::Span;
pub use trace::{
    assemble_traces, chrome_trace_json, render_tree, AttrSet, AttrValue, FinishedTrace, SpanRecord,
    TraceContext, TraceExporter, TraceNode, TraceSpan, TraceTree, Tracer, DEFAULT_TRACE_CAPACITY,
    MAX_SPAN_ATTRS, SAMPLE_SCALE,
};
