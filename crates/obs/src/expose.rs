//! Metrics and trace exposition over HTTP: a dedicated listener thread
//! routes `GET /metrics` to the current snapshot (Prometheus-style text,
//! or JSON via `Accept: application/json` / `?format=json`) and
//! `GET /traces` to the sampled span trees as Chrome `trace_event` JSON.
//! Zero dependencies — just enough HTTP/1.0 for `curl`, a scraper, or a
//! raw `TcpStream` GET.

use crate::metrics::{global, MetricsSnapshot};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Produces the snapshot served at scrape time. Callers compose layers
/// here (e.g. global registry + server registry + backend metrics).
pub type SnapshotFn = Arc<dyn Fn() -> MetricsSnapshot + Send + Sync>;

/// Produces an already-rendered body at scrape time — the `/traces`
/// route's source (typically [`crate::TraceExporter::chrome_json`]
/// (crate::TraceExporter::chrome_json)).
pub type TextFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Background exposition endpoint. One listener thread; each request is
/// answered inline (scrapes are rare and the snapshot is cheap).
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Serves the [global](crate::global) registry.
    pub fn serve(addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        Self::serve_with(addr, Arc::new(|| global().snapshot()))
    }

    /// Serves snapshots produced by `source` (no `/traces` route).
    pub fn serve_with(addr: impl ToSocketAddrs, source: SnapshotFn) -> io::Result<MetricsServer> {
        Self::serve_routes(addr, source, None)
    }

    /// Serves snapshots produced by `source`, plus a `/traces` route
    /// answering with `traces()` as Chrome `trace_event` JSON when given.
    pub fn serve_routes(
        addr: impl ToSocketAddrs,
        source: SnapshotFn,
        traces: Option<TextFn>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("ustr-obs-expose".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    // ordering: SeqCst — the poll loop must observe the stop flag in the
                    // same total order as the listener shutdown; once per poll tick.
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let _ = answer(stream, &source, traces.as_ref());
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            // ordering: SeqCst pairs with the poll loop's load.
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn answer(stream: TcpStream, source: &SnapshotFn, traces: Option<&TextFn>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // Parse the request line for the path, then scan headers for an
    // `Accept: application/json` up to the blank line; tolerate clients
    // that close early.
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let target = request_line
        .split_whitespace()
        .nth(1)
        .unwrap_or("/metrics")
        .to_string();
    let mut accept_json = false;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("accept:") && lower.contains("application/json") {
            accept_json = true;
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let want_json = accept_json || query.split('&').any(|kv| kv == "format=json");
    let (status, content_type, body) = match path {
        "/traces" => match traces {
            Some(render) => ("200 OK", "application/json", render()),
            None => (
                "404 Not Found",
                "text/plain",
                "tracing is not enabled on this endpoint\n".to_string(),
            ),
        },
        "/" | "/metrics" | "/metrics.json" => {
            if want_json || path == "/metrics.json" {
                ("200 OK", "application/json", source().render_json())
            } else {
                (
                    "200 OK",
                    "text/plain; version=0.0.4",
                    source().render_text(),
                )
            }
        }
        _ => (
            "404 Not Found",
            "text/plain",
            format!("no such path: {path}\n"),
        ),
    };
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Performs one HTTP GET for `/metrics` against an exposition endpoint
/// and returns the body. Used by the bench harness and tests so they need
/// no external HTTP client.
pub fn scrape(addr: impl ToSocketAddrs) -> io::Result<String> {
    scrape_path(addr, "/metrics")
}

/// Performs one HTTP GET for an arbitrary `path` (e.g. `/traces`,
/// `/metrics?format=json`) and returns the body.
pub fn scrape_path(addr: impl ToSocketAddrs, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: ustr\r\n\r\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before body",
            ));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "non-200 scrape response: {}",
                head.lines().next().unwrap_or("")
            ),
        ));
    }
    let mut body = String::new();
    io::Read::read_to_string(&mut reader, &mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn scrape_round_trips_the_snapshot() {
        let reg = MetricsRegistry::new();
        reg.counter("expose.test").add(7);
        let reg = Arc::new(reg);
        let source: SnapshotFn = {
            let reg = Arc::clone(&reg);
            Arc::new(move || reg.snapshot())
        };
        let server = MetricsServer::serve_with("127.0.0.1:0", source).unwrap();
        let body = scrape(server.local_addr()).unwrap();
        assert!(body.contains("ustr_expose_test 7"));
        // Scrapes are byte-stable while nothing records.
        let again = scrape(server.local_addr()).unwrap();
        assert_eq!(body, again);
        server.shutdown();
    }

    #[test]
    fn json_route_serves_render_json_and_traces_route_serves_chrome_json() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("expose.json").add(3);
        let source: SnapshotFn = {
            let reg = Arc::clone(&reg);
            Arc::new(move || reg.snapshot())
        };
        let tracer = Arc::new(crate::Tracer::with_seed(21));
        tracer.set_sample_permyriad(crate::SAMPLE_SCALE);
        tracer.root_span("request").finish();
        let exporter = crate::TraceExporter::new(Arc::clone(&tracer));
        let traces: TextFn = Arc::new(move || exporter.chrome_json());
        let server = MetricsServer::serve_routes("127.0.0.1:0", source, Some(traces)).unwrap();
        let addr = server.local_addr();
        // Query-string and path-suffix JSON both hit render_json.
        let json = scrape_path(addr, "/metrics?format=json").unwrap();
        assert!(json.contains("\"expose.json\": 3"));
        assert_eq!(json, scrape_path(addr, "/metrics.json").unwrap());
        // Plain /metrics stays Prometheus text.
        let text = scrape(addr).unwrap();
        assert!(text.contains("ustr_expose_json 3"));
        // /traces serves the sampled spans as Chrome trace-event JSON.
        let chrome = scrape_path(addr, "/traces").unwrap();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"name\": \"request\""));
        server.shutdown();
    }

    #[test]
    fn accept_header_negotiates_json() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("expose.accept").add(1);
        let source: SnapshotFn = {
            let reg = Arc::clone(&reg);
            Arc::new(move || reg.snapshot())
        };
        let server = MetricsServer::serve_with("127.0.0.1:0", source).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(
            stream,
            "GET /metrics HTTP/1.0\r\nHost: ustr\r\nAccept: application/json\r\n\r\n"
        )
        .unwrap();
        stream.flush().unwrap();
        let mut body = String::new();
        io::Read::read_to_string(&mut BufReader::new(stream), &mut body).unwrap();
        assert!(body.contains("Content-Type: application/json"));
        assert!(body.contains("\"expose.accept\": 1"));
        server.shutdown();
    }

    #[test]
    fn unknown_path_and_missing_traces_route_get_404() {
        let server = MetricsServer::serve("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        assert!(scrape_path(addr, "/nope").is_err());
        assert!(scrape_path(addr, "/traces").is_err());
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let server = MetricsServer::serve("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The port is released; a fresh bind on it succeeds (racy in
        // principle, but the address was ours a moment ago).
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok());
    }
}
