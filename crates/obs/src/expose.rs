//! Plaintext metrics exposition over HTTP: a dedicated listener thread
//! answers every request with the current snapshot rendered as
//! Prometheus-style text. Zero dependencies — just enough HTTP/1.0 for
//! `curl`, a scraper, or a raw `TcpStream` GET.

use crate::metrics::{global, MetricsSnapshot};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Produces the snapshot served at scrape time. Callers compose layers
/// here (e.g. global registry + server registry + backend metrics).
pub type SnapshotFn = Arc<dyn Fn() -> MetricsSnapshot + Send + Sync>;

/// Background exposition endpoint. One listener thread; each request is
/// answered inline (scrapes are rare and the snapshot is cheap).
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Serves the [global](crate::global) registry.
    pub fn serve(addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        Self::serve_with(addr, Arc::new(|| global().snapshot()))
    }

    /// Serves snapshots produced by `source`.
    pub fn serve_with(addr: impl ToSocketAddrs, source: SnapshotFn) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("ustr-obs-expose".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    // ordering: SeqCst — the poll loop must observe the stop flag in the
                    // same total order as the listener shutdown; once per poll tick.
                    if flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let _ = answer(stream, &source);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            // ordering: SeqCst pairs with the poll loop's load.
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn answer(stream: TcpStream, source: &SnapshotFn) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    // Consume the request head (request line + headers) up to the blank
    // line; tolerate clients that close early.
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let body = source().render_text();
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Performs one HTTP GET against an exposition endpoint and returns the
/// body. Used by the bench harness and tests so they need no external
/// HTTP client.
pub fn scrape(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET /metrics HTTP/1.0\r\nHost: ustr\r\n\r\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before body",
            ));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
    }
    if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "non-200 scrape response: {}",
                head.lines().next().unwrap_or("")
            ),
        ));
    }
    let mut body = String::new();
    io::Read::read_to_string(&mut reader, &mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn scrape_round_trips_the_snapshot() {
        let reg = MetricsRegistry::new();
        reg.counter("expose.test").add(7);
        let reg = Arc::new(reg);
        let source: SnapshotFn = {
            let reg = Arc::clone(&reg);
            Arc::new(move || reg.snapshot())
        };
        let server = MetricsServer::serve_with("127.0.0.1:0", source).unwrap();
        let body = scrape(server.local_addr()).unwrap();
        assert!(body.contains("ustr_expose_test 7"));
        // Scrapes are byte-stable while nothing records.
        let again = scrape(server.local_addr()).unwrap();
        assert_eq!(body, again);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let server = MetricsServer::serve("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The port is released; a fresh bind on it succeeds (racy in
        // principle, but the address was ours a moment ago).
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok());
    }
}
