//! Ring-buffered slow-query log: queries whose total latency crosses a
//! configurable threshold are kept (pattern, mode, per-stage breakdown,
//! and — when the query was traced — its full span tree) for later
//! dumping, bounded by a fixed capacity.

use crate::trace::{assemble_traces, render_tree, SpanRecord};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded slow query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// Pattern, lossily decoded for display.
    pub pattern: String,
    /// Query mode name (`threshold`, `top_k`, `listing`, `approx`).
    pub mode: &'static str,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// `(stage name, microseconds)` breakdown, in lifecycle order.
    pub stages: Vec<(&'static str, u64)>,
    /// The query's trace spans when it was traced (empty otherwise);
    /// rendered as an indented span tree under the flat stage line.
    pub spans: Vec<SpanRecord>,
}

impl SlowQueryEntry {
    /// One-line rendering: `12345us threshold "AT" [lookup=3 fanout=12000 merge=40]`.
    /// Traced entries append their span tree, indented, on following
    /// lines.
    pub fn render(&self) -> String {
        let mut out = format!("{}us {} {:?} [", self.total_us, self.mode, self.pattern);
        for (i, (stage, us)) in self.stages.iter().enumerate() {
            let sep = if i == 0 { "" } else { " " };
            let _ = write!(out, "{sep}{stage}={us}");
        }
        out.push(']');
        for tree in assemble_traces(&self.spans) {
            for line in render_tree(&tree).lines() {
                out.push_str("\n  ");
                out.push_str(line);
            }
        }
        out
    }
}

/// Fixed-capacity ring of the most recent slow queries. The threshold is
/// an atomic so serving code can adjust it without locks; the ring itself
/// is mutex-guarded but only touched for queries that are already slow.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    threshold_us: AtomicU64,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
}

/// Default slow-query threshold: 10ms.
pub const DEFAULT_SLOW_QUERY_US: u64 = 10_000;

/// Default ring capacity.
pub const DEFAULT_SLOW_QUERY_CAPACITY: usize = 32;

impl Default for SlowQueryLog {
    fn default() -> Self {
        Self::new(DEFAULT_SLOW_QUERY_CAPACITY, DEFAULT_SLOW_QUERY_US)
    }
}

impl SlowQueryLog {
    pub fn new(capacity: usize, threshold_us: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            threshold_us: AtomicU64::new(threshold_us),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn threshold_us(&self) -> u64 {
        // ordering: Relaxed — a live-tunable threshold read racily; a stale
        // value only misclassifies the query in flight during the change.
        self.threshold_us.load(Ordering::Relaxed)
    }

    pub fn set_threshold_us(&self, us: u64) {
        // ordering: Relaxed — see threshold_us().
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records `entry` if it is at or over the current threshold,
    /// evicting the oldest entry when full. Returns whether it was kept.
    ///
    /// Serving code that checks the threshold earlier in a request (e.g.
    /// to decide whether to even build the entry) must capture
    /// [`threshold_us`](Self::threshold_us) once and use
    /// [`observe_at`](Self::observe_at) with the captured value —
    /// re-reading here could disagree with that earlier read when the
    /// threshold is adjusted mid-request.
    pub fn observe(&self, entry: SlowQueryEntry) -> bool {
        self.observe_at(entry, self.threshold_us())
    }

    /// As [`observe`](Self::observe), but against a caller-captured
    /// threshold so one request makes exactly one threshold decision even
    /// if [`set_threshold_us`](Self::set_threshold_us) races with it.
    pub fn observe_at(&self, entry: SlowQueryEntry, threshold_us: u64) -> bool {
        if entry.total_us < threshold_us {
            return false;
        }
        let mut ring = self.ring.lock().expect("slow-query log poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// Entries in arrival order (oldest first).
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring
            .lock()
            .expect("slow-query log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The `n` worst recent queries, slowest first (ties keep arrival
    /// order).
    pub fn worst(&self, n: usize) -> Vec<SlowQueryEntry> {
        let mut all = self.entries();
        all.sort_by_key(|e| std::cmp::Reverse(e.total_us));
        all.truncate(n);
        all
    }

    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow-query log poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.ring.lock().expect("slow-query log poisoned").clear();
    }

    /// Multi-line dump of the worst `n` entries, one per line; empty
    /// string when nothing was recorded.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        for e in self.worst(n) {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(total_us: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            pattern: "AT".to_string(),
            mode: "threshold",
            total_us,
            stages: vec![
                ("lookup", 1),
                ("fanout", total_us.saturating_sub(2)),
                ("merge", 1),
            ],
            spans: Vec::new(),
        }
    }

    #[test]
    fn threshold_filters_and_is_adjustable() {
        let log = SlowQueryLog::new(4, 100);
        assert!(!log.observe(entry(99)));
        assert!(log.observe(entry(100)));
        log.set_threshold_us(1000);
        assert!(!log.observe(entry(500)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let log = SlowQueryLog::new(3, 0);
        for t in 1..=5 {
            log.observe(entry(t));
        }
        let totals: Vec<u64> = log.entries().iter().map(|e| e.total_us).collect();
        assert_eq!(totals, vec![3, 4, 5]);
    }

    #[test]
    fn worst_sorts_descending() {
        let log = SlowQueryLog::new(8, 0);
        for t in [5, 900, 20, 300] {
            log.observe(entry(t));
        }
        let worst: Vec<u64> = log.worst(2).iter().map(|e| e.total_us).collect();
        assert_eq!(worst, vec![900, 300]);
    }

    #[test]
    fn render_includes_stage_breakdown() {
        let log = SlowQueryLog::new(2, 0);
        log.observe(entry(1000));
        let text = log.render(10);
        assert!(text.contains("1000us threshold \"AT\""));
        assert!(text.contains("fanout=998"));
    }

    #[test]
    fn traced_entries_render_their_span_tree() {
        use crate::{Tracer, SAMPLE_SCALE};
        let t = std::sync::Arc::new(Tracer::with_seed(17));
        t.set_sample_permyriad(SAMPLE_SCALE);
        let root = t.root_span("request");
        let mut child = root.child("cache_lookup");
        child.set_str("cache", "miss");
        child.finish();
        let finished = root.finish_trace().expect("recording root");
        let log = SlowQueryLog::new(2, 0);
        let mut e = entry(1000);
        e.spans = finished.spans;
        log.observe(e);
        let text = log.render(10);
        assert!(text.contains("1000us threshold \"AT\""));
        // The span tree follows the flat stage line, indented.
        assert!(text.contains("\n  request "));
        assert!(text.contains("\n    cache_lookup "));
        assert!(text.contains("[cache=miss]"));
    }

    #[test]
    fn observe_at_uses_the_captured_threshold_not_the_live_one() {
        let log = SlowQueryLog::new(4, 100);
        let captured = log.threshold_us();
        // The threshold moves mid-request; the captured value decides.
        log.set_threshold_us(10_000);
        assert!(log.observe_at(entry(150), captured));
        // And vice versa: a raised captured threshold filters even after
        // the live one drops.
        log.set_threshold_us(0);
        assert!(!log.observe_at(entry(150), 10_000));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn threshold_race_makes_one_decision_per_request() {
        // A writer flips the threshold between "keep nothing" and "keep
        // everything" while observers record entries at a fixed captured
        // threshold of 0. Every observe_at must keep its entry — a
        // re-read of the live threshold inside observe would drop some.
        let log = std::sync::Arc::new(SlowQueryLog::new(usize::MAX >> 1, 0));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        const PER_THREAD: u64 = 500;
        std::thread::scope(|s| {
            let flipper = {
                let log = std::sync::Arc::clone(&log);
                let stop = std::sync::Arc::clone(&stop);
                s.spawn(move || {
                    let mut up = false;
                    // ordering: Relaxed — a test stop flag.
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        log.set_threshold_us(if up { u64::MAX } else { 0 });
                        up = !up;
                        std::thread::yield_now();
                    }
                })
            };
            let mut workers = Vec::new();
            for _ in 0..3 {
                let log = std::sync::Arc::clone(&log);
                workers.push(s.spawn(move || {
                    let mut kept = 0u64;
                    for i in 0..PER_THREAD {
                        // One threshold read per request, then one decision.
                        let threshold = 0; // captured at request start
                        if log.observe_at(entry(i + 1), threshold) {
                            kept += 1;
                        }
                    }
                    kept
                }));
            }
            let kept: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            // ordering: Relaxed — a test stop flag.
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            flipper.join().unwrap();
            assert_eq!(kept, 3 * PER_THREAD);
            assert_eq!(log.len(), (3 * PER_THREAD) as usize);
        });
    }

    #[test]
    fn concurrent_observers_never_exceed_capacity() {
        let log = std::sync::Arc::new(SlowQueryLog::new(16, 0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = std::sync::Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        log.observe(entry(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(log.len(), 16);
    }
}
