//! Ring-buffered slow-query log: queries whose total latency crosses a
//! configurable threshold are kept (pattern, mode, per-stage breakdown)
//! for later dumping, bounded by a fixed capacity.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded slow query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// Pattern, lossily decoded for display.
    pub pattern: String,
    /// Query mode name (`threshold`, `top_k`, `listing`, `approx`).
    pub mode: &'static str,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// `(stage name, microseconds)` breakdown, in lifecycle order.
    pub stages: Vec<(&'static str, u64)>,
}

impl SlowQueryEntry {
    /// One-line rendering: `12345us threshold "AT" [lookup=3 fanout=12000 merge=40]`.
    pub fn render(&self) -> String {
        let mut out = format!("{}us {} {:?} [", self.total_us, self.mode, self.pattern);
        for (i, (stage, us)) in self.stages.iter().enumerate() {
            let sep = if i == 0 { "" } else { " " };
            let _ = write!(out, "{sep}{stage}={us}");
        }
        out.push(']');
        out
    }
}

/// Fixed-capacity ring of the most recent slow queries. The threshold is
/// an atomic so serving code can adjust it without locks; the ring itself
/// is mutex-guarded but only touched for queries that are already slow.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    threshold_us: AtomicU64,
    ring: Mutex<VecDeque<SlowQueryEntry>>,
}

/// Default slow-query threshold: 10ms.
pub const DEFAULT_SLOW_QUERY_US: u64 = 10_000;

/// Default ring capacity.
pub const DEFAULT_SLOW_QUERY_CAPACITY: usize = 32;

impl Default for SlowQueryLog {
    fn default() -> Self {
        Self::new(DEFAULT_SLOW_QUERY_CAPACITY, DEFAULT_SLOW_QUERY_US)
    }
}

impl SlowQueryLog {
    pub fn new(capacity: usize, threshold_us: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            threshold_us: AtomicU64::new(threshold_us),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn threshold_us(&self) -> u64 {
        // ordering: Relaxed — a live-tunable threshold read racily; a stale
        // value only misclassifies the query in flight during the change.
        self.threshold_us.load(Ordering::Relaxed)
    }

    pub fn set_threshold_us(&self, us: u64) {
        // ordering: Relaxed — see threshold_us().
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records `entry` if it is at or over the threshold, evicting the
    /// oldest entry when full. Returns whether it was kept.
    pub fn observe(&self, entry: SlowQueryEntry) -> bool {
        if entry.total_us < self.threshold_us() {
            return false;
        }
        let mut ring = self.ring.lock().expect("slow-query log poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// Entries in arrival order (oldest first).
    pub fn entries(&self) -> Vec<SlowQueryEntry> {
        self.ring
            .lock()
            .expect("slow-query log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// The `n` worst recent queries, slowest first (ties keep arrival
    /// order).
    pub fn worst(&self, n: usize) -> Vec<SlowQueryEntry> {
        let mut all = self.entries();
        all.sort_by_key(|e| std::cmp::Reverse(e.total_us));
        all.truncate(n);
        all
    }

    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow-query log poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.ring.lock().expect("slow-query log poisoned").clear();
    }

    /// Multi-line dump of the worst `n` entries, one per line; empty
    /// string when nothing was recorded.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        for e in self.worst(n) {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(total_us: u64) -> SlowQueryEntry {
        SlowQueryEntry {
            pattern: "AT".to_string(),
            mode: "threshold",
            total_us,
            stages: vec![
                ("lookup", 1),
                ("fanout", total_us.saturating_sub(2)),
                ("merge", 1),
            ],
        }
    }

    #[test]
    fn threshold_filters_and_is_adjustable() {
        let log = SlowQueryLog::new(4, 100);
        assert!(!log.observe(entry(99)));
        assert!(log.observe(entry(100)));
        log.set_threshold_us(1000);
        assert!(!log.observe(entry(500)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let log = SlowQueryLog::new(3, 0);
        for t in 1..=5 {
            log.observe(entry(t));
        }
        let totals: Vec<u64> = log.entries().iter().map(|e| e.total_us).collect();
        assert_eq!(totals, vec![3, 4, 5]);
    }

    #[test]
    fn worst_sorts_descending() {
        let log = SlowQueryLog::new(8, 0);
        for t in [5, 900, 20, 300] {
            log.observe(entry(t));
        }
        let worst: Vec<u64> = log.worst(2).iter().map(|e| e.total_us).collect();
        assert_eq!(worst, vec![900, 300]);
    }

    #[test]
    fn render_includes_stage_breakdown() {
        let log = SlowQueryLog::new(2, 0);
        log.observe(entry(1000));
        let text = log.render(10);
        assert!(text.contains("1000us threshold \"AT\""));
        assert!(text.contains("fanout=998"));
    }

    #[test]
    fn concurrent_observers_never_exceed_capacity() {
        let log = std::sync::Arc::new(SlowQueryLog::new(16, 0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = std::sync::Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        log.observe(entry(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(log.len(), 16);
    }
}
