//! Document-collection bookkeeping for the generalized suffix tree (§6).

/// Concatenation of a document collection with separator bytes, plus the
/// position → document mapping needed by the string-listing index.
///
/// Documents are joined by a single separator byte that must not occur in
/// any document; a trailing separator terminates the last document so every
/// document suffix ends at a separator.
///
/// ```
/// use ustr_suffix::DocumentConcat;
/// let cat = DocumentConcat::new(&[b"AB".to_vec(), b"CD".to_vec()], 0);
/// assert_eq!(cat.text(), b"AB\0CD\0");
/// assert_eq!(cat.doc_of(0), Some(0));
/// assert_eq!(cat.doc_of(3), Some(1));
/// assert_eq!(cat.doc_of(2), None); // separator position
/// ```
#[derive(Debug, Clone)]
pub struct DocumentConcat {
    text: Vec<u8>,
    separator: u8,
    /// doc id per text position; `u32::MAX` at separators.
    doc: Vec<u32>,
    /// Start offset of each document in `text`.
    starts: Vec<u32>,
}

const SEP_MARK: u32 = u32::MAX;

impl DocumentConcat {
    /// Concatenates `docs` with `separator`.
    ///
    /// # Panics
    ///
    /// Panics if any document contains the separator byte.
    pub fn new(docs: &[Vec<u8>], separator: u8) -> Self {
        let total: usize = docs.iter().map(|d| d.len() + 1).sum();
        let mut text = Vec::with_capacity(total);
        let mut doc = Vec::with_capacity(total);
        let mut starts = Vec::with_capacity(docs.len());
        for (id, d) in docs.iter().enumerate() {
            assert!(
                !d.contains(&separator),
                "document {id} contains the separator byte {separator:#x}"
            );
            starts.push(text.len() as u32);
            text.extend_from_slice(d);
            doc.extend(std::iter::repeat_n(id as u32, d.len()));
            text.push(separator);
            doc.push(SEP_MARK);
        }
        Self {
            text,
            separator,
            doc,
            starts,
        }
    }

    /// The concatenated text.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The separator byte.
    pub fn separator(&self) -> u8 {
        self.separator
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.starts.len()
    }

    /// Document containing text position `pos`, or `None` at separators or
    /// out of bounds.
    pub fn doc_of(&self, pos: usize) -> Option<usize> {
        match self.doc.get(pos) {
            Some(&d) if d != SEP_MARK => Some(d as usize),
            _ => None,
        }
    }

    /// Start offset of document `id` within the concatenated text.
    pub fn doc_start(&self, id: usize) -> usize {
        self.starts[id] as usize
    }

    /// Offset of `pos` within its own document.
    pub fn offset_in_doc(&self, pos: usize) -> Option<usize> {
        self.doc_of(pos).map(|d| pos - self.doc_start(d))
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.text.capacity()
            + self.doc.capacity() * std::mem::size_of::<u32>()
            + self.starts.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_positions_to_documents() {
        let cat = DocumentConcat::new(&[b"abc".to_vec(), b"".to_vec(), b"xy".to_vec()], b'$');
        assert_eq!(cat.text(), b"abc$$xy$");
        assert_eq!(cat.num_docs(), 3);
        assert_eq!(cat.doc_of(0), Some(0));
        assert_eq!(cat.doc_of(2), Some(0));
        assert_eq!(cat.doc_of(3), None);
        assert_eq!(cat.doc_of(4), None); // empty doc's separator
        assert_eq!(cat.doc_of(5), Some(2));
        assert_eq!(cat.doc_of(100), None);
        assert_eq!(cat.offset_in_doc(6), Some(1));
        assert_eq!(cat.doc_start(2), 5);
    }

    #[test]
    #[should_panic(expected = "contains the separator")]
    fn rejects_separator_in_document() {
        DocumentConcat::new(&[b"a$b".to_vec()], b'$');
    }

    #[test]
    fn empty_collection() {
        let cat = DocumentConcat::new(&[], 0);
        assert_eq!(cat.num_docs(), 0);
        assert!(cat.text().is_empty());
    }
}
