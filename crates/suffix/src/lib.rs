//! Deterministic-string substrate: suffix arrays, LCP arrays, and suffix
//! trees (Section 3.4 of the paper).
//!
//! The uncertain-string indexes of Thankachan et al. reduce every query to
//! classic suffix-structure operations over a *deterministic* text `t`
//! derived from the uncertain string:
//!
//! * [`suffix_array`] — linear-time SA-IS construction.
//! * [`lcp_array`] — Kasai's linear-time longest-common-prefix array.
//! * [`SuffixArray`] — text + SA bundle with O(m log n) pattern range search
//!   (used by the simple/naive baselines).
//! * [`SuffixTree`] — explicit suffix tree built from SA + LCP in linear
//!   time, with O(m log σ) locus/suffix-range descent, preorder numbering,
//!   subtree intervals, and O(1) LCA — everything Sections 4–7 need.
//! * [`DocumentConcat`] — document-collection bookkeeping for the
//!   generalized suffix tree of Section 6.

#![forbid(unsafe_code)]

mod array;
mod doc;
mod lcp;
mod sais;
mod tree;

pub use array::SuffixArray;
pub use doc::DocumentConcat;
pub use lcp::{lcp_array, rank_array};
pub use sais::suffix_array;
pub use tree::{NodeId, SuffixTree};
