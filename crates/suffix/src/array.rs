//! Owned suffix-array bundle with pattern range search.

use std::cmp::Ordering;

use crate::{lcp_array, rank_array, sais::suffix_array};

/// A text together with its suffix array; supports O(m log n) suffix-range
/// lookup for a pattern. This is the search structure of the paper's
/// *simple index* (Section 4.1); the efficient indexes use [`crate::SuffixTree`].
///
/// ```
/// use ustr_suffix::SuffixArray;
/// let sa = SuffixArray::new(b"banana".to_vec());
/// assert_eq!(sa.suffix_range(b"ana"), Some((1, 2)));
/// assert_eq!(sa.suffix_range(b"nan"), Some((5, 5)));
/// assert_eq!(sa.suffix_range(b"x"), None);
/// ```
#[derive(Debug, Clone)]
pub struct SuffixArray {
    text: Vec<u8>,
    sa: Vec<u32>,
}

impl SuffixArray {
    /// Builds the suffix array of `text` (linear time, SA-IS).
    pub fn new(text: Vec<u8>) -> Self {
        let sa = suffix_array(&text);
        Self { text, sa }
    }

    /// The indexed text.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The suffix array entries.
    pub fn sa(&self) -> &[u32] {
        &self.sa
    }

    /// Text length.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Returns `true` for an empty text.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Computes the LCP array (not cached).
    pub fn lcp(&self) -> Vec<u32> {
        lcp_array(&self.text, &self.sa)
    }

    /// Computes the inverse suffix array (not cached).
    pub fn rank(&self) -> Vec<u32> {
        rank_array(&self.sa)
    }

    /// Compares the suffix at `pos` against `pattern` for prefix containment:
    /// `Less` if the suffix sorts before all pattern-prefixed suffixes,
    /// `Equal` if `pattern` is a prefix of the suffix, `Greater` otherwise.
    fn classify(&self, pos: usize, pattern: &[u8]) -> Ordering {
        let suffix = &self.text[pos..];
        let k = suffix.len().min(pattern.len());
        match suffix[..k].cmp(&pattern[..k]) {
            Ordering::Equal => {
                if suffix.len() >= pattern.len() {
                    Ordering::Equal
                } else {
                    // Proper prefix of the pattern: sorts before it.
                    Ordering::Less
                }
            }
            other => other,
        }
    }

    /// Inclusive suffix-array range `[l, r]` of all suffixes having `pattern`
    /// as a prefix, or `None` when the pattern does not occur. The empty
    /// pattern matches every suffix.
    pub fn suffix_range(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        if self.text.is_empty() {
            return None;
        }
        if pattern.is_empty() {
            return Some((0, self.sa.len() - 1));
        }
        let lo = self
            .sa
            .partition_point(|&p| self.classify(p as usize, pattern) == Ordering::Less);
        let hi = self
            .sa
            .partition_point(|&p| self.classify(p as usize, pattern) != Ordering::Greater);
        if lo < hi {
            Some((lo, hi - 1))
        } else {
            None
        }
    }

    /// All text positions where `pattern` occurs (unsorted).
    pub fn occurrences(&self, pattern: &[u8]) -> Vec<usize> {
        match self.suffix_range(pattern) {
            Some((l, r)) => self.sa[l..=r].iter().map(|&p| p as usize).collect(),
            None => Vec::new(),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.text.capacity() + self.sa.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_all_occurrences() {
        let sa = SuffixArray::new(b"abracadabra".to_vec());
        let mut occ = sa.occurrences(b"abra");
        occ.sort_unstable();
        assert_eq!(occ, vec![0, 7]);
        let mut occ = sa.occurrences(b"a");
        occ.sort_unstable();
        assert_eq!(occ, vec![0, 3, 5, 7, 10]);
    }

    #[test]
    fn missing_pattern_returns_none() {
        let sa = SuffixArray::new(b"abracadabra".to_vec());
        assert_eq!(sa.suffix_range(b"abx"), None);
        assert_eq!(sa.suffix_range(b"zzz"), None);
    }

    #[test]
    fn pattern_longer_than_text() {
        let sa = SuffixArray::new(b"ab".to_vec());
        assert_eq!(sa.suffix_range(b"abc"), None);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let sa = SuffixArray::new(b"abc".to_vec());
        assert_eq!(sa.suffix_range(b""), Some((0, 2)));
    }

    #[test]
    fn empty_text() {
        let sa = SuffixArray::new(Vec::new());
        assert_eq!(sa.suffix_range(b"a"), None);
        assert_eq!(sa.suffix_range(b""), None);
        assert!(sa.is_empty());
    }

    #[test]
    fn range_matches_brute_force() {
        let text = b"abaabbabaabbaabab".to_vec();
        let sa = SuffixArray::new(text.clone());
        for m in 1..=4 {
            for start in 0..text.len() - m {
                let pattern = &text[start..start + m];
                let mut expected: Vec<usize> = (0..=text.len() - m)
                    .filter(|&i| &text[i..i + m] == pattern)
                    .collect();
                expected.sort_unstable();
                let mut got = sa.occurrences(pattern);
                got.sort_unstable();
                assert_eq!(got, expected, "pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn sentinel_bytes_in_text() {
        let sa = SuffixArray::new(b"AB\0AB\0".to_vec());
        let mut occ = sa.occurrences(b"AB");
        occ.sort_unstable();
        assert_eq!(occ, vec![0, 3]);
        // Patterns containing the separator never match across it.
        assert_eq!(sa.occurrences(b"B\0A"), vec![1]);
    }
}
