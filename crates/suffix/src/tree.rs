//! Explicit suffix tree built from SA + LCP in linear time.
//!
//! The tree is constructed over the text extended with a *virtual
//! terminator* — a character strictly smaller than every byte that appears
//! exactly once at the end. This guarantees no suffix is a prefix of another
//! (so every suffix is a distinct leaf), even for texts that embed repeated
//! separator bytes, which the transformed uncertain strings do.
//!
//! Consequences for users:
//!
//! * The tree has `n + 1` leaves; SA slot `0` is the virtual-terminator
//!   suffix (text position `n`), slots `1..=n` are the real suffixes in the
//!   same order as [`crate::suffix_array`].
//! * Leaf string depths are inflated by 1 (the virtual terminator);
//!   internal-node depths are real LCP values.
//! * Pattern descent never matches the virtual terminator, so suffix ranges
//!   of non-empty patterns always lie within `[1, n]`.
//!
//! Space: nodes are 16-byte structs, children live in one CSR array, and
//! LCA is answered from the slot-LCP array + per-boundary split nodes with
//! an O(n)-word block RMQ — everything is O(n) words with small constants.

use ustr_rmq::{BlockRmq, Direction, Rmq};

use crate::{lcp_array, sais::suffix_array};

/// Node identifier within a [`SuffixTree`] (index into the node arena).
pub type NodeId = u32;

const NO_NODE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    /// String depth: length of the root-to-node path label. Leaf depths
    /// include the virtual terminator.
    depth: u32,
    /// Inclusive SA-slot range of the leaves below this node.
    l: u32,
    r: u32,
    parent: u32,
}

/// Explicit suffix tree with preorder numbering, subtree intervals, pattern
/// locus descent, and O(1) LCA queries.
///
/// ```
/// use ustr_suffix::SuffixTree;
/// let st = SuffixTree::build(b"banana".to_vec());
/// // "ana" prefixes the suffixes starting at 3 and 1.
/// let (l, r) = st.suffix_range(b"ana").unwrap();
/// let mut occ: Vec<usize> = (l..=r).map(|j| st.sa(j)).collect();
/// occ.sort();
/// assert_eq!(occ, vec![1, 3]);
/// assert_eq!(st.suffix_range(b"nab"), None);
/// ```
#[derive(Debug, Clone)]
pub struct SuffixTree {
    text: Vec<u8>,
    /// Virtual SA: `sa[0] = n` (terminator suffix), `sa[1..]` = real SA.
    sa: Vec<u32>,
    nodes: Vec<Node>,
    root: u32,
    /// CSR children: `child_flat[child_start[v]..child_start[v+1]]`, in SA
    /// (lexicographic) order.
    child_start: Vec<u32>,
    child_flat: Vec<u32>,
    /// SA slot -> leaf node id.
    leaf_of_slot: Vec<u32>,
    /// Node id -> preorder rank, and the largest preorder rank in its subtree.
    pre: Vec<u32>,
    pre_end: Vec<u32>,
    /// `slot_lcp[j]` = LCP of the suffixes in slots `j-1` and `j` (0 for
    /// `j <= 1`); `boundary_node[j]` = LCA of leaves `j-1` and `j`.
    slot_lcp: Vec<u32>,
    boundary_node: Vec<u32>,
    /// Min-RMQ over `slot_lcp` for O(1) LCA.
    lcp_rmq: BlockRmq,
}

impl SuffixTree {
    /// Builds the suffix tree of `text` (linear time: SA-IS + Kasai + one
    /// stack sweep).
    pub fn build(text: Vec<u8>) -> Self {
        let plain_sa = suffix_array(&text);
        let lcp = lcp_array(&text, &plain_sa);
        Self::from_parts(text, plain_sa, lcp)
    }

    /// Builds from a precomputed suffix array and LCP array of `text`.
    pub fn from_parts(text: Vec<u8>, plain_sa: Vec<u32>, lcp: Vec<u32>) -> Self {
        let n = text.len();
        let m = n + 1; // leaves, including the virtual-terminator suffix

        let mut sa = Vec::with_capacity(m);
        sa.push(n as u32);
        sa.extend_from_slice(&plain_sa);

        let mut slot_lcp = vec![0u32; m];
        if m > 2 {
            slot_lcp[2..m].copy_from_slice(&lcp[1..m - 1]);
        }

        let mut nodes: Vec<Node> = Vec::with_capacity(2 * m);
        nodes.push(Node {
            depth: 0,
            l: 0,
            r: (m - 1) as u32,
            parent: NO_NODE,
        });
        let root = 0u32;
        let mut leaf_of_slot = vec![NO_NODE; m];
        let mut boundary_node = vec![root; m];
        let mut stack: Vec<u32> = vec![root];

        // One sweep over the leaves; a node's parent is fixed when it leaves
        // the stack.
        for j in 0..=m {
            let lcp_j = if j < m { slot_lcp[j] } else { 0 };
            let mut last: Option<u32> = None;
            loop {
                let &top = stack.last().expect("root never pops");
                if nodes[top as usize].depth <= lcp_j || top == root {
                    break;
                }
                stack.pop();
                nodes[top as usize].r = (j - 1) as u32;
                if let Some(l) = last {
                    nodes[l as usize].parent = top;
                }
                last = Some(top);
            }
            if let Some(l) = last {
                let &top = stack.last().unwrap();
                let boundary = if nodes[top as usize].depth == lcp_j {
                    nodes[l as usize].parent = top;
                    top
                } else {
                    // Split: new internal node at depth lcp_j adopting `last`
                    // as its first (leftmost) child.
                    let v = nodes.len() as u32;
                    nodes.push(Node {
                        depth: lcp_j,
                        l: nodes[l as usize].l,
                        r: NO_NODE, // finalized when popped
                        parent: NO_NODE,
                    });
                    nodes[l as usize].parent = v;
                    stack.push(v);
                    v
                };
                if j < m {
                    // The node at depth lcp_j is the LCA of leaves j-1 and j.
                    boundary_node[j] = boundary;
                }
            }
            if j < m {
                // Leaf depth includes the virtual terminator.
                let suffix_len = (n - sa[j] as usize) as u32 + 1;
                let leaf = nodes.len() as u32;
                nodes.push(Node {
                    depth: suffix_len,
                    l: j as u32,
                    r: j as u32,
                    parent: NO_NODE,
                });
                leaf_of_slot[j] = leaf;
                stack.push(leaf);
            }
        }
        debug_assert_eq!(stack.as_slice(), &[root]);
        nodes[root as usize].r = (m - 1) as u32;

        // CSR children via a stable counting sort on (parent, range start).
        let count = nodes.len();
        let mut child_start = vec![0u32; count + 1];
        for v in nodes.iter().skip(1) {
            child_start[v.parent as usize + 1] += 1;
        }
        for i in 0..count {
            child_start[i + 1] += child_start[i];
        }
        let mut cursor = child_start.clone();
        let mut order: Vec<u32> = (1..count as u32).collect();
        // Children of one parent must appear in SA order; sorting all
        // non-root nodes by (parent, l) achieves that in one pass.
        order.sort_unstable_by_key(|&id| {
            let nd = &nodes[id as usize];
            ((nd.parent as u64) << 32) | nd.l as u64
        });
        let mut child_flat = vec![0u32; count.saturating_sub(1)];
        for id in order {
            let p = nodes[id as usize].parent as usize;
            child_flat[cursor[p] as usize] = id;
            cursor[p] += 1;
        }

        // Preorder numbering and subtree intervals.
        let mut pre = vec![0u32; count];
        let mut pre_end = vec![0u32; count];
        let mut next_pre = 0u32;
        let mut dfs: Vec<(u32, u32)> = vec![(root, child_start[root as usize])];
        pre[root as usize] = 0;
        next_pre += 1;
        while let Some(&mut (node, ref mut cix)) = dfs.last_mut() {
            let node_us = node as usize;
            if *cix < child_start[node_us + 1] {
                let child = child_flat[*cix as usize];
                *cix += 1;
                pre[child as usize] = next_pre;
                next_pre += 1;
                dfs.push((child, child_start[child as usize]));
            } else {
                pre_end[node_us] = next_pre - 1;
                dfs.pop();
            }
        }

        let lcp_f64: Vec<f64> = slot_lcp.iter().map(|&x| x as f64).collect();
        let lcp_rmq = BlockRmq::new(&lcp_f64, Direction::Min);

        Self {
            text,
            sa,
            nodes,
            root,
            child_start,
            child_flat,
            leaf_of_slot,
            pre,
            pre_end,
            slot_lcp,
            boundary_node,
            lcp_rmq,
        }
    }

    /// The indexed text (without the virtual terminator).
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Decomposes the tree into the `(text, suffix array, LCP array)` triple
    /// accepted by [`SuffixTree::from_parts`] — the persistent representation
    /// used by index snapshots. Rebuilding from these parts is a linear,
    /// deterministic pass, so the reconstructed tree answers every query
    /// identically (and skips the SA-IS construction entirely).
    pub fn to_parts(&self) -> (Vec<u8>, Vec<u32>, Vec<u32>) {
        let n = self.text.len();
        // `sa[0]` is the virtual-terminator slot; the plain SA follows.
        let plain_sa = self.sa[1..].to_vec();
        // `slot_lcp[j]` for `j >= 2` holds `lcp[j - 1]`; `lcp[0]` is 0.
        let mut lcp = vec![0u32; n];
        if n > 1 {
            lcp[1..n].copy_from_slice(&self.slot_lcp[2..n + 1]);
        }
        (self.text.clone(), plain_sa, lcp)
    }

    /// Text length (excluding the virtual terminator).
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Number of SA slots / leaves: `text_len() + 1`.
    pub fn num_slots(&self) -> usize {
        self.sa.len()
    }

    /// Total node count (internal + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Text position of the suffix in SA slot `j` (slot 0 is the virtual
    /// terminator at position `text_len()`).
    #[inline]
    pub fn sa(&self, j: usize) -> usize {
        self.sa[j] as usize
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// String depth of `node` (leaf depths include the virtual terminator).
    #[inline]
    pub fn string_depth(&self, node: NodeId) -> usize {
        self.nodes[node as usize].depth as usize
    }

    /// Parent of `node`, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let p = self.nodes[node as usize].parent;
        (p != NO_NODE).then_some(p)
    }

    /// Children of `node` in lexicographic (SA) order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        let v = node as usize;
        &self.child_flat[self.child_start[v] as usize..self.child_start[v + 1] as usize]
    }

    /// Returns `true` when `node` is a leaf.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        let v = node as usize;
        self.child_start[v] == self.child_start[v + 1]
    }

    /// Inclusive SA-slot range `[l, r]` of the leaves below `node`.
    #[inline]
    pub fn slot_range(&self, node: NodeId) -> (usize, usize) {
        let n = &self.nodes[node as usize];
        (n.l as usize, n.r as usize)
    }

    /// Leaf node for SA slot `j`.
    #[inline]
    pub fn leaf(&self, slot: usize) -> NodeId {
        self.leaf_of_slot[slot]
    }

    /// LCP between the suffixes in slots `j-1` and `j` (0 for `j <= 1`).
    #[inline]
    pub fn slot_lcp(&self, j: usize) -> usize {
        self.slot_lcp[j] as usize
    }

    /// Preorder rank of `node`.
    #[inline]
    pub fn preorder(&self, node: NodeId) -> usize {
        self.pre[node as usize] as usize
    }

    /// Preorder interval `[preorder(node), ..]` covered by the subtree.
    #[inline]
    pub fn preorder_range(&self, node: NodeId) -> (usize, usize) {
        (
            self.pre[node as usize] as usize,
            self.pre_end[node as usize] as usize,
        )
    }

    /// Returns `true` when `a` is an ancestor of `b` (inclusive).
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let (al, ar) = self.preorder_range(a);
        let pb = self.preorder(b);
        al <= pb && pb <= ar
    }

    /// LCA of the leaves in slots `i` and `j`: the boundary split node at
    /// the minimum slot-LCP between them.
    pub fn lca_of_slots(&self, i: usize, j: usize) -> NodeId {
        if i == j {
            return self.leaf_of_slot[i];
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let k = self.lcp_rmq.query(lo + 1, hi);
        self.boundary_node[k]
    }

    /// Lowest common ancestor of two nodes in O(1).
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        if a == b {
            return a;
        }
        if self.is_ancestor(a, b) {
            return a;
        }
        if self.is_ancestor(b, a) {
            return b;
        }
        let (al, _) = self.slot_range(a);
        let (bl, _) = self.slot_range(b);
        self.lca_of_slots(al, bl)
    }

    /// First byte of the edge entering `child` from a parent at string depth
    /// `parent_depth`, or `None` when the edge starts with the virtual
    /// terminator.
    fn edge_first_byte(&self, child: NodeId, parent_depth: usize) -> Option<u8> {
        let pos = self.sa(self.nodes[child as usize].l as usize) + parent_depth;
        self.text.get(pos).copied()
    }

    /// Locus of `pattern`: the node closest to the root whose path label has
    /// `pattern` as a prefix. Returns the root for the empty pattern and
    /// `None` when the pattern does not occur.
    pub fn locus(&self, pattern: &[u8]) -> Option<NodeId> {
        let m = pattern.len();
        if m == 0 {
            return Some(self.root);
        }
        let mut node = self.root;
        let mut matched = 0usize; // chars matched == string depth reached
        loop {
            let depth = self.nodes[node as usize].depth as usize;
            debug_assert_eq!(depth, matched);
            let target = pattern[matched];
            let child = *self
                .children(node)
                .iter()
                .find(|&&c| self.edge_first_byte(c, depth) == Some(target))?;
            let child_depth = self.nodes[child as usize].depth as usize;
            let start = self.sa(self.nodes[child as usize].l as usize);
            // Real characters available along this path (a leaf's final
            // character is the virtual terminator, which matches nothing).
            let real_limit = self.text.len() - start;
            let end = child_depth.min(m);
            if end > real_limit {
                return None;
            }
            if self.text[start + matched + 1..start + end] != pattern[matched + 1..end] {
                return None;
            }
            if end == m {
                return Some(child);
            }
            matched = end; // == child_depth < m: descend further
            node = child;
        }
    }

    /// Inclusive SA-slot range of all suffixes prefixed by `pattern`, or
    /// `None` when the pattern does not occur. The empty pattern matches
    /// every slot including the virtual terminator.
    pub fn suffix_range(&self, pattern: &[u8]) -> Option<(usize, usize)> {
        if pattern.is_empty() {
            return Some((0, self.sa.len() - 1));
        }
        let locus = self.locus(pattern)?;
        Some(self.slot_range(locus))
    }

    /// All text positions where `pattern` occurs (unsorted).
    pub fn occurrences(&self, pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() {
            return (0..self.text.len()).collect();
        }
        match self.suffix_range(pattern) {
            Some((l, r)) => (l..=r).map(|j| self.sa(j)).collect(),
            None => Vec::new(),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        use std::mem::size_of;
        self.text.capacity()
            + self.sa.capacity() * size_of::<u32>()
            + self.nodes.capacity() * size_of::<Node>()
            + (self.child_start.capacity()
                + self.child_flat.capacity()
                + self.leaf_of_slot.capacity()
                + self.pre.capacity()
                + self.pre_end.capacity()
                + self.slot_lcp.capacity()
                + self.boundary_node.capacity())
                * size_of::<u32>()
            // BlockRmq: one f64 value + one u64 mask per slot + champions.
            + self.sa.len() * (size_of::<f64>() + size_of::<u64>())
            + self.sa.len().div_ceil(64) * (size_of::<u32>() + size_of::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuffixArray;

    #[test]
    fn banana_structure() {
        let st = SuffixTree::build(b"banana".to_vec());
        assert_eq!(st.num_slots(), 7);
        assert_eq!(st.sa(0), 6); // virtual terminator slot
                                 // Real suffixes preserve plain SA order.
        let plain = SuffixArray::new(b"banana".to_vec());
        for j in 0..6 {
            assert_eq!(st.sa(j + 1), plain.sa()[j] as usize);
        }
    }

    #[test]
    fn locus_and_ranges_match_suffix_array() {
        let text = b"abaabbabaabbaabab".to_vec();
        let st = SuffixTree::build(text.clone());
        let sa = SuffixArray::new(text.clone());
        for m in 1..=5 {
            for start in 0..text.len() - m {
                let pattern = &text[start..start + m];
                let tree_range = st.suffix_range(pattern);
                let arr_range = sa.suffix_range(pattern);
                match (tree_range, arr_range) {
                    (Some((tl, tr)), Some((al, ar))) => {
                        // Tree slots are array slots shifted by 1 (virtual slot 0).
                        assert_eq!((tl, tr), (al + 1, ar + 1), "pattern {pattern:?}");
                    }
                    (None, None) => {}
                    other => panic!("mismatch for {pattern:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn missing_patterns() {
        let st = SuffixTree::build(b"mississippi".to_vec());
        assert_eq!(st.suffix_range(b"x"), None);
        assert_eq!(st.suffix_range(b"issx"), None);
        assert_eq!(st.suffix_range(b"mississippix"), None);
        assert_eq!(st.suffix_range(b"ppi\0"), None);
    }

    #[test]
    fn pattern_is_full_text() {
        let st = SuffixTree::build(b"abcde".to_vec());
        let (l, r) = st.suffix_range(b"abcde").unwrap();
        assert_eq!(l, r);
        assert_eq!(st.sa(l), 0);
    }

    #[test]
    fn repeated_separators_are_handled() {
        // One suffix is a proper prefix of another ("0" of "00"): the virtual
        // terminator keeps them distinct leaves.
        let st = SuffixTree::build(b"A\0A\0\0".to_vec());
        let (l, r) = st.suffix_range(b"A\0").unwrap();
        let mut occ: Vec<usize> = (l..=r).map(|j| st.sa(j)).collect();
        occ.sort_unstable();
        assert_eq!(occ, vec![0, 2]);
        let (l, r) = st.suffix_range(b"\0").unwrap();
        assert_eq!(r - l + 1, 3);
    }

    #[test]
    fn parent_child_consistency() {
        let st = SuffixTree::build(b"abracadabra".to_vec());
        for id in 0..st.num_nodes() as u32 {
            for &c in st.children(id) {
                assert_eq!(st.parent(c), Some(id));
                assert!(st.string_depth(c) > st.string_depth(id));
                let (pl, pr) = st.slot_range(id);
                let (cl, cr) = st.slot_range(c);
                assert!(pl <= cl && cr <= pr);
            }
            if st.parent(id).is_none() {
                assert_eq!(id, st.root());
            }
        }
    }

    #[test]
    fn children_partition_parent_range() {
        let st = SuffixTree::build(b"abracadabra".to_vec());
        for id in 0..st.num_nodes() as u32 {
            if st.is_leaf(id) {
                continue;
            }
            let (pl, pr) = st.slot_range(id);
            let mut cursor = pl;
            for &c in st.children(id) {
                let (cl, cr) = st.slot_range(c);
                assert_eq!(cl, cursor, "gap in children of node {id}");
                cursor = cr + 1;
            }
            assert_eq!(cursor, pr + 1);
            assert!(st.children(id).len() >= 2, "internal nodes branch");
        }
    }

    #[test]
    fn preorder_intervals_nest() {
        let st = SuffixTree::build(b"mississippi".to_vec());
        for id in 0..st.num_nodes() as u32 {
            let (l, r) = st.preorder_range(id);
            assert!(l <= r);
            assert_eq!(st.preorder(id), l);
            for &c in st.children(id) {
                let (cl, cr) = st.preorder_range(c);
                assert!(l < cl && cr <= r);
                assert!(st.is_ancestor(id, c));
                assert!(!st.is_ancestor(c, id));
            }
        }
    }

    #[test]
    fn lca_agrees_with_ancestor_walk() {
        let st = SuffixTree::build(b"abaababaabaab".to_vec());
        let naive_lca = |mut a: NodeId, mut b: NodeId| -> NodeId {
            let mut seen = std::collections::HashSet::new();
            loop {
                seen.insert(a);
                match st.parent(a) {
                    Some(p) => a = p,
                    None => break,
                }
            }
            seen.insert(a);
            loop {
                if seen.contains(&b) {
                    return b;
                }
                b = st.parent(b).unwrap();
            }
        };
        let slots = st.num_slots();
        for i in 0..slots {
            for j in 0..slots {
                let (a, b) = (st.leaf(i), st.leaf(j));
                assert_eq!(st.lca(a, b), naive_lca(a, b), "slots {i},{j}");
            }
        }
        // Internal-node LCAs too.
        for a in 0..st.num_nodes() as u32 {
            for b in (0..st.num_nodes() as u32).step_by(3) {
                assert_eq!(st.lca(a, b), naive_lca(a, b), "nodes {a},{b}");
            }
        }
    }

    #[test]
    fn lca_of_leaves_has_lcp_string_depth() {
        let text = b"abaababaabaab".to_vec();
        let st = SuffixTree::build(text.clone());
        let lcp_of = |a: usize, b: usize| -> usize {
            text[a..]
                .iter()
                .zip(text[b..].iter())
                .take_while(|(x, y)| x == y)
                .count()
        };
        for i in 1..st.num_slots() {
            for j in i + 1..st.num_slots() {
                let l = st.lca(st.leaf(i), st.leaf(j));
                assert_eq!(
                    st.string_depth(l),
                    lcp_of(st.sa(i), st.sa(j)),
                    "slots {i},{j}"
                );
            }
        }
    }

    #[test]
    fn single_char_text() {
        let st = SuffixTree::build(b"a".to_vec());
        assert_eq!(st.suffix_range(b"a"), Some((1, 1)));
        assert_eq!(st.suffix_range(b"b"), None);
        assert_eq!(st.num_slots(), 2);
    }

    #[test]
    fn all_equal_text() {
        let st = SuffixTree::build(b"aaaaaa".to_vec());
        let (l, r) = st.suffix_range(b"aaa").unwrap();
        assert_eq!(r - l + 1, 4);
        let mut occ = st.occurrences(b"aaa");
        occ.sort_unstable();
        assert_eq!(occ, vec![0, 1, 2, 3]);
    }

    #[test]
    fn occurrences_match_brute_force_random() {
        let mut state = 77u64;
        let text: Vec<u8> = (0..400)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 4) as u8 + b'a'
            })
            .collect();
        let st = SuffixTree::build(text.clone());
        for m in [1usize, 2, 3, 7, 12] {
            for start in (0..text.len() - m).step_by(11) {
                let pattern = text[start..start + m].to_vec();
                let mut expected: Vec<usize> = (0..=text.len() - m)
                    .filter(|&i| text[i..i + m] == pattern[..])
                    .collect();
                expected.sort_unstable();
                let mut got = st.occurrences(&pattern);
                got.sort_unstable();
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn to_parts_round_trips_through_from_parts() {
        for text in [&b"mississippi"[..], b"A\0A\0\0", b"a", b"aaaaaa"] {
            let original = SuffixTree::build(text.to_vec());
            let (t, sa, lcp) = original.to_parts();
            let rebuilt = SuffixTree::from_parts(t, sa, lcp);
            assert_eq!(original.num_nodes(), rebuilt.num_nodes());
            for j in 0..original.num_slots() {
                assert_eq!(original.sa(j), rebuilt.sa(j));
                assert_eq!(original.slot_lcp(j), rebuilt.slot_lcp(j));
            }
            for m in 1..=3.min(text.len()) {
                for start in 0..=text.len() - m {
                    let pattern = &text[start..start + m];
                    assert_eq!(
                        original.suffix_range(pattern),
                        rebuilt.suffix_range(pattern),
                        "pattern {pattern:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn slot_lcp_matches_lca_depth() {
        let st = SuffixTree::build(b"mississippi".to_vec());
        for j in 2..st.num_slots() {
            let l = st.lca(st.leaf(j - 1), st.leaf(j));
            assert_eq!(st.slot_lcp(j), st.string_depth(l));
        }
    }
}
