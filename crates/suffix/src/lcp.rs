//! Kasai's linear-time LCP array construction.

/// Inverse suffix array: `rank[p]` = rank of the suffix starting at `p`.
pub fn rank_array(sa: &[u32]) -> Vec<u32> {
    let mut rank = vec![0u32; sa.len()];
    for (j, &p) in sa.iter().enumerate() {
        rank[p as usize] = j as u32;
    }
    rank
}

/// Longest-common-prefix array via Kasai et al. (2001).
///
/// `lcp[0] = 0`; for `j >= 1`, `lcp[j]` is the length of the longest common
/// prefix of the suffixes at `sa[j-1]` and `sa[j]`.
///
/// ```
/// use ustr_suffix::{lcp_array, suffix_array};
/// let text = b"banana";
/// let sa = suffix_array(text);
/// assert_eq!(lcp_array(text, &sa), vec![0, 1, 3, 0, 0, 2]);
/// ```
pub fn lcp_array(text: &[u8], sa: &[u32]) -> Vec<u32> {
    let n = text.len();
    debug_assert_eq!(sa.len(), n);
    let mut lcp = vec![0u32; n];
    if n == 0 {
        return lcp;
    }
    let rank = rank_array(sa);
    let mut h = 0usize;
    for p in 0..n {
        let r = rank[p] as usize;
        if r == 0 {
            h = 0;
            continue;
        }
        let q = sa[r - 1] as usize;
        while p + h < n && q + h < n && text[p + h] == text[q + h] {
            h += 1;
        }
        lcp[r] = h as u32;
        h = h.saturating_sub(1);
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suffix_array;

    fn naive_lcp(text: &[u8], sa: &[u32]) -> Vec<u32> {
        let mut lcp = vec![0u32; sa.len()];
        for j in 1..sa.len() {
            let a = &text[sa[j - 1] as usize..];
            let b = &text[sa[j] as usize..];
            lcp[j] = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count() as u32;
        }
        lcp
    }

    #[test]
    fn banana() {
        let text = b"banana";
        let sa = suffix_array(text);
        assert_eq!(lcp_array(text, &sa), naive_lcp(text, &sa));
    }

    #[test]
    fn repetitive_and_sentinel_texts() {
        for text in [&b"aaaa"[..], b"abababab", b"AB\0AB\0B\0", b"x"] {
            let sa = suffix_array(text);
            assert_eq!(lcp_array(text, &sa), naive_lcp(text, &sa), "text {text:?}");
        }
    }

    #[test]
    fn pseudo_random() {
        let mut state = 99u64;
        let text: Vec<u8> = (0..2000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 3) as u8 + b'a'
            })
            .collect();
        let sa = suffix_array(&text);
        assert_eq!(lcp_array(&text, &sa), naive_lcp(&text, &sa));
    }

    #[test]
    fn rank_inverts_sa() {
        let text = b"mississippi";
        let sa = suffix_array(text);
        let rank = rank_array(&sa);
        for (j, &p) in sa.iter().enumerate() {
            assert_eq!(rank[p as usize] as usize, j);
        }
    }

    #[test]
    fn empty_text() {
        assert_eq!(lcp_array(b"", &[]), Vec::<u32>::new());
        assert_eq!(rank_array(&[]), Vec::<u32>::new());
    }
}
