//! Linear-time suffix array construction by induced sorting (SA-IS).
//!
//! Nong, Zhang, Chan, "Two Efficient Algorithms for Linear Time Suffix Array
//! Construction" (2009). The implementation works on `usize` sequences so the
//! recursion over renamed LMS substrings reuses the same code path; the
//! public entry point handles the byte alphabet and the implicit sentinel.

/// Builds the suffix array of `text`.
///
/// Returns `sa` with `sa[j]` = starting position of the j-th smallest suffix
/// of `text`. Suffix comparison treats a shorter suffix that is a prefix of
/// a longer one as smaller (the ordering induced by a unique minimal
/// sentinel, which the implementation appends internally).
///
/// ```
/// use ustr_suffix::suffix_array;
/// assert_eq!(suffix_array(b"banana"), vec![5, 3, 1, 0, 4, 2]);
/// assert_eq!(suffix_array(b""), Vec::<u32>::new());
/// ```
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    if text.is_empty() {
        return Vec::new();
    }
    // Shift bytes by +1 so 0 is a unique, strictly smallest sentinel.
    let mut s: Vec<usize> = Vec::with_capacity(text.len() + 1);
    s.extend(text.iter().map(|&b| b as usize + 1));
    s.push(0);
    let sa = sais(&s, 257);
    // Drop the sentinel suffix (always first).
    sa.into_iter().skip(1).map(|p| p as u32).collect()
}

const EMPTY: usize = usize::MAX;

/// Core SA-IS over a sequence ending with a unique smallest sentinel (0).
fn sais(s: &[usize], sigma: usize) -> Vec<usize> {
    let n = s.len();
    debug_assert!(n >= 1);
    debug_assert_eq!(s[n - 1], 0, "sequence must end with the sentinel 0");
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        return vec![1, 0];
    }

    // Suffix types: true = S-type (suffix smaller than its right neighbour).
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    let mut bucket = vec![0usize; sigma];
    for &c in s {
        bucket[c] += 1;
    }

    let mut sa = vec![EMPTY; n];

    // Pass 1: drop LMS suffixes at their bucket tails (arbitrary intra-bucket
    // order), then induce. This sorts the LMS *substrings*.
    place_lms_at_tails(&mut sa, s, &bucket, (0..n).filter(|&i| is_lms(i)));
    induce(&mut sa, s, &is_s, &bucket);

    // Name LMS substrings in their induced (sorted) order.
    let lms_count = (0..n).filter(|&i| is_lms(i)).count();
    let mut name_of = vec![EMPTY; n];
    let mut name = 0usize;
    let mut prev = EMPTY;
    for &p in sa.iter() {
        if p == EMPTY || !is_lms(p) {
            continue;
        }
        if prev != EMPTY && !lms_substrings_equal(s, &is_lms, prev, p) {
            name += 1;
        }
        name_of[p] = name;
        prev = p;
    }
    let num_names = name + 1;

    // LMS positions in text order, and the reduced sequence of their names.
    let lms_positions: Vec<usize> = (0..n).filter(|&i| is_lms(i)).collect();
    let lms_sorted: Vec<usize> = if num_names == lms_count {
        // All names unique: the names themselves give the order.
        let mut order = vec![0usize; lms_count];
        for &p in &lms_positions {
            order[name_of[p]] = p;
        }
        order
    } else {
        // Recurse on the reduced problem. The reduced sequence ends with the
        // sentinel's name (always 0, unique) because the sentinel is LMS.
        let reduced: Vec<usize> = lms_positions.iter().map(|&p| name_of[p]).collect();
        debug_assert_eq!(*reduced.last().unwrap(), 0);
        let sub_sa = sais(&reduced, num_names);
        sub_sa.into_iter().map(|k| lms_positions[k]).collect()
    };

    // Pass 2: place LMS suffixes in their true sorted order, induce again.
    sa.fill(EMPTY);
    place_lms_at_tails(&mut sa, s, &bucket, lms_sorted.into_iter());
    induce(&mut sa, s, &is_s, &bucket);
    sa
}

/// Places the given LMS positions at the current tails of their buckets.
/// Positions must be supplied in increasing rank order; they are inserted
/// back-to-front so the best-ranked element ends up first in each bucket.
fn place_lms_at_tails(
    sa: &mut [usize],
    s: &[usize],
    bucket: &[usize],
    positions: impl DoubleEndedIterator<Item = usize>,
) {
    let mut tails = bucket_tails(bucket);
    for p in positions.rev() {
        let c = s[p];
        tails[c] -= 1;
        sa[tails[c]] = p;
    }
}

/// Exclusive prefix sums: index of the first slot of each bucket.
fn bucket_heads(bucket: &[usize]) -> Vec<usize> {
    let mut heads = Vec::with_capacity(bucket.len());
    let mut sum = 0usize;
    for &b in bucket {
        heads.push(sum);
        sum += b;
    }
    heads
}

/// Inclusive prefix sums: one past the last slot of each bucket.
fn bucket_tails(bucket: &[usize]) -> Vec<usize> {
    let mut tails = Vec::with_capacity(bucket.len());
    let mut sum = 0usize;
    for &b in bucket {
        sum += b;
        tails.push(sum);
    }
    tails
}

/// The two induced-sorting sweeps: L-types left-to-right from bucket heads,
/// then S-types right-to-left from bucket tails.
#[allow(clippy::needless_range_loop)] // index-driven sweeps mirror the algorithm's presentation
fn induce(sa: &mut [usize], s: &[usize], is_s: &[bool], bucket: &[usize]) {
    let n = s.len();
    let mut heads = bucket_heads(bucket);
    for i in 0..n {
        let j = sa[i];
        if j != EMPTY && j > 0 && !is_s[j - 1] {
            let c = s[j - 1];
            sa[heads[c]] = j - 1;
            heads[c] += 1;
        }
    }
    let mut tails = bucket_tails(bucket);
    for i in (0..n).rev() {
        let j = sa[i];
        if j != EMPTY && j > 0 && is_s[j - 1] {
            let c = s[j - 1];
            tails[c] -= 1;
            sa[tails[c]] = j - 1;
        }
    }
}

/// Compares the LMS substrings starting at `a` and `b` (both LMS positions).
/// An LMS substring runs from its LMS position through the *next* LMS
/// position inclusive.
fn lms_substrings_equal(s: &[usize], is_lms: &impl Fn(usize) -> bool, a: usize, b: usize) -> bool {
    if s[a] != s[b] {
        return false;
    }
    // The sentinel (unique smallest) only equals itself and is caught above.
    let mut i = a + 1;
    let mut j = b + 1;
    loop {
        let a_end = is_lms(i);
        let b_end = is_lms(j);
        if a_end && b_end {
            return s[i] == s[j];
        }
        if a_end != b_end || s[i] != s[j] {
            return false;
        }
        i += 1;
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n² log n) reference construction.
    pub(crate) fn naive_suffix_array(text: &[u8]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    #[test]
    fn known_small_cases() {
        assert_eq!(suffix_array(b"banana"), vec![5, 3, 1, 0, 4, 2]);
        assert_eq!(
            suffix_array(b"mississippi"),
            naive_suffix_array(b"mississippi")
        );
        assert_eq!(suffix_array(b"a"), vec![0]);
        assert_eq!(suffix_array(b"ab"), vec![0, 1]);
        assert_eq!(suffix_array(b"ba"), vec![1, 0]);
    }

    #[test]
    fn repetitive_inputs() {
        for text in [
            &b"aaaaaaaaaa"[..],
            b"abababababab",
            b"abcabcabcabc",
            b"aabaabaabaab",
            b"zzzzyzzzzyzzzzy",
        ] {
            assert_eq!(
                suffix_array(text),
                naive_suffix_array(text),
                "text {text:?}"
            );
        }
    }

    #[test]
    fn embedded_zero_bytes() {
        // The separator convention of the transformed strings: 0 bytes appear
        // repeatedly inside the text.
        let text = b"AB\0CAB\0B\0\0AB";
        assert_eq!(suffix_array(text), naive_suffix_array(text));
    }

    #[test]
    fn full_byte_range() {
        let text: Vec<u8> = (0..=255u8).rev().collect();
        assert_eq!(suffix_array(&text), naive_suffix_array(&text));
    }

    #[test]
    fn pseudo_random_matches_naive() {
        let mut state = 0x12345678u64;
        for len in [2usize, 3, 5, 17, 64, 100, 257, 1000] {
            let text: Vec<u8> = (0..len)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state % 4) as u8 + b'a'
                })
                .collect();
            assert_eq!(suffix_array(&text), naive_suffix_array(&text), "len {len}");
        }
    }

    #[test]
    fn larger_alphabet_random() {
        let mut state = 0xABCDEFu64;
        let text: Vec<u8> = (0..5000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 22) as u8 + b'A'
            })
            .collect();
        assert_eq!(suffix_array(&text), naive_suffix_array(&text));
    }

    #[test]
    fn empty_input() {
        assert_eq!(suffix_array(b""), Vec::<u32>::new());
    }

    #[test]
    fn sa_is_a_permutation() {
        let text = b"the quick brown fox jumps over the lazy dog";
        let sa = suffix_array(text);
        let mut seen = vec![false; text.len()];
        for &p in &sa {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
