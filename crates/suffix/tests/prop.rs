//! Property tests for the suffix substrate: SA-IS, LCP, tree structure,
//! LCA, and document concatenation.

use proptest::prelude::*;
use ustr_suffix::{lcp_array, rank_array, suffix_array, DocumentConcat, SuffixArray, SuffixTree};

fn byte_text() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Small alphabet with embedded separators (the transformed-text shape).
        prop::collection::vec(prop::sample::select(vec![0u8, b'a', b'b', b'c']), 1..150),
        // Full byte range.
        prop::collection::vec(any::<u8>(), 1..80),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn sa_is_sorted_permutation(text in byte_text()) {
        let sa = suffix_array(&text);
        // Permutation.
        let mut seen = vec![false; text.len()];
        for &p in &sa {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        // Sorted.
        for w in sa.windows(2) {
            prop_assert!(text[w[0] as usize..] < text[w[1] as usize..]);
        }
        // Rank inverts.
        let rank = rank_array(&sa);
        for (j, &p) in sa.iter().enumerate() {
            prop_assert_eq!(rank[p as usize] as usize, j);
        }
    }

    #[test]
    fn lcp_is_exact_and_tight(text in byte_text()) {
        let sa = suffix_array(&text);
        let lcp = lcp_array(&text, &sa);
        for j in 1..sa.len() {
            let a = &text[sa[j - 1] as usize..];
            let b = &text[sa[j] as usize..];
            let l = lcp[j] as usize;
            prop_assert_eq!(&a[..l], &b[..l], "common prefix");
            if l < a.len() && l < b.len() {
                prop_assert_ne!(a[l], b[l], "maximality");
            }
        }
    }

    #[test]
    fn tree_ranges_cover_exactly_the_occurrences(
        text in byte_text(),
        start in 0usize..150,
        len in 1usize..8,
    ) {
        let start = start % text.len();
        let len = len.min(text.len() - start);
        let pattern = text[start..start + len].to_vec();
        let tree = SuffixTree::build(text.clone());
        let mut occ = tree.occurrences(&pattern);
        occ.sort_unstable();
        let expected: Vec<usize> = (0..=text.len() - len)
            .filter(|&i| text[i..i + len] == pattern[..])
            .collect();
        prop_assert_eq!(occ, expected);
        // The suffix array agrees.
        let arr = SuffixArray::new(text.clone());
        let mut a_occ = arr.occurrences(&pattern);
        a_occ.sort_unstable();
        let mut t_occ = tree.occurrences(&pattern);
        t_occ.sort_unstable();
        prop_assert_eq!(t_occ, a_occ);
    }

    #[test]
    fn lca_depth_equals_pairwise_lcp(text in byte_text(), i in 0usize..150, j in 0usize..150) {
        let tree = SuffixTree::build(text.clone());
        let slots = tree.num_slots();
        let (i, j) = (1 + i % (slots - 1).max(1), 1 + j % (slots - 1).max(1));
        if i == j || slots < 3 {
            return Ok(());
        }
        let l = tree.lca(tree.leaf(i), tree.leaf(j));
        let (a, b) = (tree.sa(i), tree.sa(j));
        let expected = text[a..]
            .iter()
            .zip(text[b..].iter())
            .take_while(|(x, y)| x == y)
            .count();
        prop_assert_eq!(tree.string_depth(l), expected);
    }

    #[test]
    fn tree_structural_invariants(text in byte_text()) {
        let tree = SuffixTree::build(text);
        for id in 0..tree.num_nodes() as u32 {
            let (l, r) = tree.slot_range(id);
            prop_assert!(l <= r);
            let (pl, pr) = tree.preorder_range(id);
            prop_assert!(pl <= pr);
            if let Some(p) = tree.parent(id) {
                prop_assert!(tree.is_ancestor(p, id));
                prop_assert!(tree.string_depth(p) < tree.string_depth(id));
            }
            if !tree.is_leaf(id) {
                let kids = tree.children(id);
                prop_assert!(kids.len() >= 2 || id == tree.root());
                let mut cursor = l;
                for &c in kids {
                    let (cl, cr) = tree.slot_range(c);
                    prop_assert_eq!(cl, cursor);
                    cursor = cr + 1;
                }
                prop_assert_eq!(cursor, r + 1);
            }
        }
    }

    #[test]
    fn document_concat_round_trips(docs in prop::collection::vec(
        prop::collection::vec(1u8..255, 0..20), 0..8)
    ) {
        let cat = DocumentConcat::new(&docs, 0);
        prop_assert_eq!(cat.num_docs(), docs.len());
        let mut pos = 0usize;
        for (id, d) in docs.iter().enumerate() {
            prop_assert_eq!(cat.doc_start(id), pos);
            for (off, &b) in d.iter().enumerate() {
                prop_assert_eq!(cat.doc_of(pos + off), Some(id));
                prop_assert_eq!(cat.offset_in_doc(pos + off), Some(off));
                prop_assert_eq!(cat.text()[pos + off], b);
            }
            pos += d.len();
            prop_assert_eq!(cat.doc_of(pos), None, "separator");
            pos += 1;
        }
        prop_assert_eq!(cat.text().len(), pos);
    }
}
