//! Minimal argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and `--key
/// value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pub command: String,
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program name). Options may appear
    /// anywhere; an option followed by another option or nothing is a flag.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = argv.iter().peekable();
        match iter.next() {
            Some(cmd) if !cmd.starts_with("--") => out.command = cmd.clone(),
            Some(cmd) => return Err(format!("expected a subcommand, got option {cmd}")),
            None => return Err("no subcommand given".into()),
        }
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty option name".into());
                }
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        out.options
                            .insert(name.to_string(), iter.next().unwrap().clone());
                    }
                    _ => out.flags.push(name.to_string()),
                }
            } else {
                out.positional.push(tok.clone());
            }
        }
        Ok(out)
    }

    /// String option by name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// Returns `true` when `--name` was given without a value.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Typed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for --{name}")),
            None => Ok(default),
        }
    }

    /// Required positional argument.
    pub fn positional(&self, index: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(index)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing argument: {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_positionals_and_options() {
        let a = Args::parse(&argv(
            "search data.ustr PAT --tau 0.3 --quiet --tau-min 0.1",
        ))
        .unwrap();
        assert_eq!(a.command, "search");
        assert_eq!(a.positional, vec!["data.ustr", "PAT"]);
        assert_eq!(a.get("tau"), Some("0.3"));
        assert_eq!(a.get("tau-min"), Some("0.1"));
        assert!(a.flag("quiet"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn typed_options_with_defaults() {
        let a = Args::parse(&argv("gen --n 500")).unwrap();
        assert_eq!(a.get_parsed("n", 10usize).unwrap(), 500);
        assert_eq!(a.get_parsed("theta", 0.25f64).unwrap(), 0.25);
        assert!(a.get_parsed::<usize>("n", 0).is_ok());
        let bad = Args::parse(&argv("gen --n abc")).unwrap();
        assert!(bad.get_parsed::<usize>("n", 0).is_err());
    }

    #[test]
    fn rejects_missing_subcommand() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("--tau 0.3")).is_err());
    }

    #[test]
    fn missing_positional_reports_what() {
        let a = Args::parse(&argv("search file.ustr")).unwrap();
        let err = a.positional(1, "PATTERN").unwrap_err();
        assert!(err.contains("PATTERN"));
    }
}
