//! `ustr` — command-line front end for the uncertain-strings workspace.
//!
//! ```text
//! ustr generate --n 10000 --theta 0.3 --seed 42 --out data.ustr
//! ustr search data.ustr PATTERN --tau 0.3 [--tau-min 0.1]
//! ustr search --index data.idx PATTERN --tau 0.3
//! ustr top data.ustr PATTERN --k 5 [--tau-min 0.1]
//! ustr list collection.ustr PATTERN --tau 0.3   (one document per line)
//! ustr stats data.ustr [--tau-min 0.1]
//! ustr build-index data.ustr --out data.idx [--tau-min 0.1]
//! ustr serve-batch INDEXDIR queries.txt --threads 4
//! ```
//!
//! Files hold uncertain strings in the text format of
//! [`UncertainString::parse`]; `generate` writes one. For `list`, each
//! non-empty line is one document. `build-index` snapshots a built index to
//! disk (`ustr-store` format); `search --index` loads one instead of
//! rebuilding. `serve-batch` answers a file of `PATTERN TAU` query lines over
//! a directory of `*.idx` snapshots (or a collection file) using the
//! `ustr-service` concurrent engine. `--quiet` on any query command prints
//! result rows only, for scripting.

mod args;

use std::fs;
use std::process::ExitCode;

use args::Args;
use ustr_core::{Index, ListingIndex};
use ustr_service::{BatchQuery, QueryService, ServiceConfig};
use ustr_store::Snapshot;
use ustr_uncertain::UncertainString;
use ustr_workload::{generate_string, DatasetConfig};

/// `(subcommand, usage, one-line description)` for every command.
const COMMANDS: &[(&str, &str, &str)] = &[
    (
        "generate",
        "ustr generate --n N --theta T --seed S [--out FILE]",
        "write a synthetic uncertain string",
    ),
    (
        "search",
        "ustr search (FILE | --index FILE.idx) PATTERN --tau T [--tau-min T0] [--quiet]",
        "probable occurrences of PATTERN",
    ),
    (
        "top",
        "ustr top FILE PATTERN --k K [--tau-min T0] [--quiet]",
        "the K most probable occurrences",
    ),
    (
        "list",
        "ustr list FILE PATTERN --tau T [--tau-min T0] [--quiet]",
        "documents containing PATTERN",
    ),
    (
        "stats",
        "ustr stats FILE [--tau-min T0]",
        "construction statistics",
    ),
    (
        "build-index",
        "ustr build-index FILE --out FILE.idx [--tau-min T0] [--quiet]",
        "build and snapshot an index",
    ),
    (
        "serve-batch",
        "ustr serve-batch (INDEXDIR | FILE) QUERIES.txt --threads N [--shards S] [--cache C] [--tau-min T0] [--quiet]",
        "answer a query batch concurrently",
    ),
];

/// Usage text for one subcommand, or the full listing for unknown input.
fn usage_for(command: Option<&str>) -> String {
    if let Some(cmd) = command {
        if let Some((_, usage, _)) = COMMANDS.iter().find(|(name, _, _)| *name == cmd) {
            return format!("usage: {usage}");
        }
    }
    let mut out = String::from("usage:\n");
    for (_, usage, what) in COMMANDS {
        out.push_str(&format!("  {usage}\n      {what}\n"));
    }
    out.push_str("  ustr help");
    out
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Only the failing subcommand's usage, not the whole blob.
            let cmd = argv.first().map(|s| s.as_str());
            eprintln!("error: {e}\n{}", usage_for(cmd));
            ExitCode::FAILURE
        }
    }
}

/// Dispatches a parsed command line; returns the text to print.
fn run(argv: &[String]) -> Result<String, String> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "search" => cmd_search(&args),
        "top" => cmd_top(&args),
        "list" => cmd_list(&args),
        "stats" => cmd_stats(&args),
        "build-index" => cmd_build_index(&args),
        "serve-batch" => cmd_serve_batch(&args),
        "help" | "--help" => Ok(usage_for(None)),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load_string(path: &str) -> Result<UncertainString, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Newlines are treated as whitespace so long strings can wrap.
    let joined = text.replace(['\n', '\r'], " ");
    UncertainString::parse(joined.trim()).map_err(|e| format!("{path}: {e}"))
}

fn load_collection(path: &str) -> Result<Vec<UncertainString>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .enumerate()
        .map(|(i, l)| UncertainString::parse(l).map_err(|e| format!("{path}:{}: {e}", i + 1)))
        .collect()
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let n: usize = args.get_parsed("n", 10_000)?;
    let theta: f64 = args.get_parsed("theta", 0.2)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let s = generate_string(&DatasetConfig::new(n, theta, seed));
    let rendered = s.to_string().replace(" | ", " |\n");
    match args.get("out") {
        Some(path) => {
            fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!(
                "wrote {} positions (theta={theta}, seed={seed}) to {path}",
                s.len()
            ))
        }
        None => Ok(rendered),
    }
}

fn cmd_search(args: &Args) -> Result<String, String> {
    let quiet = args.flag("quiet");
    let tau: f64 = args.get_parsed("tau", 0.5)?;
    // With --index the snapshot supplies the text and tau_min; otherwise the
    // index is built from the uncertain-string file.
    let (index, pattern) = match args.get("index") {
        Some(idx_path) => {
            let index = Index::load(idx_path).map_err(|e| e.to_string())?;
            (index, args.positional(0, "PATTERN")?.as_bytes().to_vec())
        }
        None => {
            let path = args.positional(0, "FILE")?;
            let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
            let tau_min: f64 = args.get_parsed("tau-min", tau.min(0.1))?;
            let s = load_string(path)?;
            let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
            (index, pattern)
        }
    };
    let hits = index.query(&pattern, tau).map_err(|e| e.to_string())?;
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "{} occurrence(s) of {:?} with probability >= {tau}\n",
            hits.len(),
            String::from_utf8_lossy(&pattern)
        ));
    }
    for &(pos, p) in hits.hits() {
        if quiet {
            out.push_str(&format!("{pos} {p:.9}\n"));
        } else {
            out.push_str(&format!("  position {pos:>8}  p = {p:.6}\n"));
        }
    }
    Ok(out.trim_end().to_string())
}

fn cmd_build_index(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let out_path = args
        .get("out")
        .ok_or_else(|| "missing required option --out".to_string())?;
    let tau_min: f64 = args.get_parsed("tau-min", 0.1)?;
    let s = load_string(path)?;
    let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
    index.save(out_path).map_err(|e| e.to_string())?;
    if args.flag("quiet") {
        return Ok(String::new());
    }
    let bytes = fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    let st = index.stats();
    Ok(format!(
        "wrote {out_path}: {} source positions, {} factors, tau_min {tau_min}, \
         {bytes} bytes (built in {:?})",
        st.source_len, st.num_factors, st.build_time
    ))
}

/// Parses a queries file: one `PATTERN TAU` per line; `#` comments and blank
/// lines are skipped.
fn load_queries(path: &str) -> Result<Vec<BatchQuery>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let pattern = parts.next().expect("non-empty line").as_bytes().to_vec();
        let tau: f64 = parts
            .next()
            .ok_or_else(|| format!("{path}:{}: expected 'PATTERN TAU'", lineno + 1))?
            .parse()
            .map_err(|_| format!("{path}:{}: invalid TAU", lineno + 1))?;
        queries.push((pattern, tau));
    }
    Ok(queries)
}

fn cmd_serve_batch(args: &Args) -> Result<String, String> {
    let source = args.positional(0, "INDEXDIR")?;
    let queries_path = args.positional(1, "QUERIES.txt")?;
    let quiet = args.flag("quiet");
    let config = ServiceConfig {
        threads: args.get_parsed("threads", 0usize)?,
        shards: args.get_parsed("shards", 0usize)?,
        cache_capacity: args.get_parsed("cache", 1024usize)?,
    };
    let queries = load_queries(queries_path)?;
    let start = std::time::Instant::now();
    let service = if fs::metadata(source)
        .map_err(|e| format!("cannot read {source}: {e}"))?
        .is_dir()
    {
        if args.get("tau-min").is_some() {
            return Err(
                "--tau-min applies only when building from a collection file; \
                 snapshots carry their own tau_min"
                    .to_string(),
            );
        }
        QueryService::load_dir(source, config).map_err(|e| e.to_string())?
    } else {
        let docs = load_collection(source)?;
        let tau_min: f64 = args.get_parsed("tau-min", 0.05)?;
        QueryService::build(&docs, tau_min, config).map_err(|e| e.to_string())?
    };
    let ready = start.elapsed();

    let t0 = std::time::Instant::now();
    let results = service.query_batch(&queries);
    let answered = t0.elapsed();

    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "{} document(s) in {} shard(s), {} thread(s); ready in {ready:?}, \
             {} query(ies) answered in {answered:?}\n",
            service.num_docs(),
            service.num_shards(),
            service.threads(),
            queries.len(),
        ));
    }
    for (q, ((pattern, tau), result)) in queries.iter().zip(results.iter()).enumerate() {
        match result {
            Ok(hits) => {
                if !quiet {
                    out.push_str(&format!(
                        "query {q} {:?} tau={tau}: {} document(s)\n",
                        String::from_utf8_lossy(pattern),
                        hits.len()
                    ));
                }
                for doc_hits in hits.iter() {
                    for &(pos, p) in &doc_hits.hits {
                        if quiet {
                            out.push_str(&format!("{q} {} {pos} {p:.9}\n", doc_hits.doc));
                        } else {
                            out.push_str(&format!(
                                "  doc {:>6} position {pos:>8} p = {p:.6}\n",
                                doc_hits.doc
                            ));
                        }
                    }
                }
            }
            Err(e) => out.push_str(&format!(
                "query {q} {:?} tau={tau}: error: {e}\n",
                String::from_utf8_lossy(pattern)
            )),
        }
    }
    Ok(out.trim_end().to_string())
}

fn cmd_top(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
    let k: usize = args.get_parsed("k", 5)?;
    let tau_min: f64 = args.get_parsed("tau-min", 0.05)?;
    let s = load_string(path)?;
    let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
    let hits = index.query_top_k(&pattern, k).map_err(|e| e.to_string())?;
    let quiet = args.flag("quiet");
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "top {} occurrence(s) of {:?} (visibility floor tau_min = {tau_min})\n",
            hits.len(),
            String::from_utf8_lossy(&pattern)
        ));
    }
    for (rank, (pos, p)) in hits.iter().enumerate() {
        if quiet {
            out.push_str(&format!("{pos} {p:.9}\n"));
        } else {
            out.push_str(&format!(
                "  #{:<3} position {pos:>8}  p = {p:.6}\n",
                rank + 1
            ));
        }
    }
    Ok(out.trim_end().to_string())
}

fn cmd_list(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
    let tau: f64 = args.get_parsed("tau", 0.5)?;
    let tau_min: f64 = args.get_parsed("tau-min", tau.min(0.1))?;
    let docs = load_collection(path)?;
    let index = ListingIndex::build(&docs, tau_min).map_err(|e| e.to_string())?;
    let hits = index.query(&pattern, tau).map_err(|e| e.to_string())?;
    let quiet = args.flag("quiet");
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "{} of {} document(s) contain {:?} with probability >= {tau}\n",
            hits.len(),
            docs.len(),
            String::from_utf8_lossy(&pattern)
        ));
    }
    for h in &hits {
        if quiet {
            out.push_str(&format!("{} {:.9}\n", h.doc, h.relevance));
        } else {
            out.push_str(&format!(
                "  document {:>6}  Rel_max = {:.6}\n",
                h.doc, h.relevance
            ));
        }
    }
    Ok(out.trim_end().to_string())
}

fn cmd_stats(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let tau_min: f64 = args.get_parsed("tau-min", 0.1)?;
    let s = load_string(path)?;
    let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
    let st = index.stats();
    Ok(format!(
        "source positions      {}\n\
         uncertain fraction    {:.3}\n\
         total choices         {}\n\
         tau_min               {}\n\
         factors               {}\n\
         transformed length    {}\n\
         expansion             {:.2}x\n\
         build time            {:?}\n\
         index heap            {:.2} MiB",
        st.source_len,
        s.uncertain_fraction(),
        s.total_choices(),
        tau_min,
        st.num_factors,
        st.transformed_len,
        st.expansion(),
        st.build_time,
        st.heap_mib()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_search_round_trip() {
        let path = std::env::temp_dir().join("ustr_cli_gen.ustr");
        let path = path.to_string_lossy().into_owned();
        let msg = run(&argv(&format!(
            "generate --n 200 --theta 0.2 --seed 7 --out {path}"
        )))
        .unwrap();
        assert!(msg.contains("200 positions"));
        let stats = run(&argv(&format!("stats {path} --tau-min 0.1"))).unwrap();
        assert!(stats.contains("source positions      200"));
    }

    #[test]
    fn search_finds_paper_example() {
        let path = write_temp(
            "ustr_cli_fig3.ustr",
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 |\n\
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        );
        let out = run(&argv(&format!("search {path} AT --tau 0.4 --tau-min 0.05"))).unwrap();
        assert!(out.contains("1 occurrence(s)"), "{out}");
        assert!(out.contains("position        8"), "{out}");
    }

    #[test]
    fn top_k_orders_by_probability() {
        let path = write_temp("ustr_cli_top.ustr", "a:.9,b:.1 | a | a:.5,b:.5 | a");
        let out = run(&argv(&format!("top {path} aa --k 3 --tau-min 0.05"))).unwrap();
        assert!(out.contains("#1"), "{out}");
        let first = out.lines().find(|l| l.contains("#1")).unwrap();
        assert!(first.contains("0.9000"), "{out}");
    }

    #[test]
    fn list_reports_matching_documents() {
        let path = write_temp(
            "ustr_cli_docs.ustr",
            "A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5\n\
             A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1\n\
             # comment line is skipped\n\
             A:.4,F:.4,P:.2 | I:.3,L:.3,P:.3,T:.1 | A\n",
        );
        let out = run(&argv(&format!("list {path} BF --tau 0.1 --tau-min 0.05"))).unwrap();
        assert!(out.contains("1 of 3 document(s)"), "{out}");
        assert!(out.contains("document      0"), "{out}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&argv("search missing_file.ustr AT --tau 0.4")).is_err());
        assert!(run(&[]).is_err());
        let help = run(&argv("help")).unwrap();
        assert!(help.contains("usage"));
    }

    #[test]
    fn usage_is_per_subcommand() {
        let u = usage_for(Some("search"));
        assert!(u.contains("ustr search"), "{u}");
        assert!(!u.contains("serve-batch"), "only the failing command: {u}");
        let full = usage_for(Some("not-a-command"));
        assert!(full.contains("serve-batch") && full.contains("generate"));
        assert!(usage_for(None).contains("build-index"));
    }

    #[test]
    fn build_index_then_search_via_snapshot() {
        let data = write_temp(
            "ustr_cli_snap.ustr",
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 |\n\
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        );
        let idx = std::env::temp_dir().join("ustr_cli_snap.idx");
        let idx = idx.to_string_lossy().into_owned();
        let msg = run(&argv(&format!(
            "build-index {data} --out {idx} --tau-min 0.05"
        )))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        // Snapshot search equals rebuild search.
        let from_snap = run(&argv(&format!("search --index {idx} AT --tau 0.4"))).unwrap();
        let from_file = run(&argv(&format!("search {data} AT --tau 0.4 --tau-min 0.05"))).unwrap();
        assert_eq!(from_snap, from_file);
        assert!(from_snap.contains("position        8"), "{from_snap}");
        // Missing --out is a clean error.
        assert!(run(&argv(&format!("build-index {data}"))).is_err());
    }

    #[test]
    fn quiet_prints_result_rows_only() {
        let data = write_temp("ustr_cli_quiet.ustr", "a:.9,b:.1 | a | a:.5,b:.5 | a");
        let out = run(&argv(&format!(
            "search {data} aa --tau 0.3 --tau-min 0.05 --quiet"
        )))
        .unwrap();
        for line in out.lines() {
            let mut parts = line.split_whitespace();
            parts.next().unwrap().parse::<usize>().expect("position");
            parts.next().unwrap().parse::<f64>().expect("probability");
            assert!(parts.next().is_none());
        }
        let top = run(&argv(&format!(
            "top {data} aa --k 2 --tau-min 0.05 --quiet"
        )))
        .unwrap();
        assert!(!top.contains("occurrence"), "{top}");
    }

    #[test]
    fn serve_batch_answers_from_collection_and_snapshot_dir() {
        let docs = write_temp(
            "ustr_cli_serve_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\nA:.5,B:.5 | B | C\n",
        );
        let queries = write_temp("ustr_cli_serve_q.txt", "# comment\nAB 0.3\nC 0.9\nZZ 0.5\n");
        let out = run(&argv(&format!(
            "serve-batch {docs} {queries} --threads 4 --shards 2 --tau-min 0.05"
        )))
        .unwrap();
        assert!(out.contains("3 document(s)"), "{out}");
        assert!(
            out.contains("query 0 \"AB\" tau=0.3: 2 document(s)"),
            "{out}"
        );

        // Snapshot directory route: save per-doc indexes, then serve.
        let dir = std::env::temp_dir().join("ustr_cli_serve_idx");
        let _ = fs::remove_dir_all(&dir);
        let collection = load_collection(&docs).unwrap();
        let service = QueryService::build(
            &collection,
            0.05,
            ServiceConfig {
                threads: 1,
                shards: 1,
                cache_capacity: 0,
            },
        )
        .unwrap();
        service.save_dir(&dir).unwrap();
        let quiet = run(&argv(&format!(
            "serve-batch {} {queries} --threads 2 --quiet",
            dir.display()
        )))
        .unwrap();
        // Quiet rows: `query doc pos prob`, identical hits to the build route.
        assert!(quiet.lines().all(|l| l.split_whitespace().count() == 4));
        assert!(quiet.contains("0 0 0 0.9"), "{quiet}");
        let _ = fs::remove_dir_all(&dir);
    }
}
