//! `ustr` — command-line front end for the uncertain-strings workspace.
//!
//! ```text
//! ustr generate --n 10000 --theta 0.3 --seed 42 --out data.ustr
//! ustr search data.ustr PATTERN --tau 0.3 [--tau-min 0.1]
//! ustr top data.ustr PATTERN --k 5 [--tau-min 0.1]
//! ustr list collection.ustr PATTERN --tau 0.3   (one document per line)
//! ustr stats data.ustr [--tau-min 0.1]
//! ```
//!
//! Files hold uncertain strings in the text format of
//! [`UncertainString::parse`]; `generate` writes one. For `list`, each
//! non-empty line is one document.

mod args;

use std::fs;
use std::process::ExitCode;

use args::Args;
use ustr_core::{Index, ListingIndex};
use ustr_uncertain::UncertainString;
use ustr_workload::{generate_string, DatasetConfig};

const USAGE: &str = "usage:
  ustr generate --n N --theta T --seed S [--out FILE]
  ustr search FILE PATTERN --tau T [--tau-min T0]
  ustr top FILE PATTERN --k K [--tau-min T0]
  ustr list FILE PATTERN --tau T [--tau-min T0]
  ustr stats FILE [--tau-min T0]";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Dispatches a parsed command line; returns the text to print.
fn run(argv: &[String]) -> Result<String, String> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "search" => cmd_search(&args),
        "top" => cmd_top(&args),
        "list" => cmd_list(&args),
        "stats" => cmd_stats(&args),
        "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load_string(path: &str) -> Result<UncertainString, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Newlines are treated as whitespace so long strings can wrap.
    let joined = text.replace(['\n', '\r'], " ");
    UncertainString::parse(joined.trim()).map_err(|e| format!("{path}: {e}"))
}

fn load_collection(path: &str) -> Result<Vec<UncertainString>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .enumerate()
        .map(|(i, l)| UncertainString::parse(l).map_err(|e| format!("{path}:{}: {e}", i + 1)))
        .collect()
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let n: usize = args.get_parsed("n", 10_000)?;
    let theta: f64 = args.get_parsed("theta", 0.2)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let s = generate_string(&DatasetConfig::new(n, theta, seed));
    let rendered = s.to_string().replace(" | ", " |\n");
    match args.get("out") {
        Some(path) => {
            fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!(
                "wrote {} positions (theta={theta}, seed={seed}) to {path}",
                s.len()
            ))
        }
        None => Ok(rendered),
    }
}

fn cmd_search(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
    let tau: f64 = args.get_parsed("tau", 0.5)?;
    let tau_min: f64 = args.get_parsed("tau-min", tau.min(0.1))?;
    let s = load_string(path)?;
    let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
    let hits = index.query(&pattern, tau).map_err(|e| e.to_string())?;
    let mut out = format!(
        "{} occurrence(s) of {:?} with probability >= {tau}\n",
        hits.len(),
        String::from_utf8_lossy(&pattern)
    );
    for &(pos, p) in hits.hits() {
        out.push_str(&format!("  position {pos:>8}  p = {p:.6}\n"));
    }
    Ok(out.trim_end().to_string())
}

fn cmd_top(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
    let k: usize = args.get_parsed("k", 5)?;
    let tau_min: f64 = args.get_parsed("tau-min", 0.05)?;
    let s = load_string(path)?;
    let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
    let hits = index.query_top_k(&pattern, k).map_err(|e| e.to_string())?;
    let mut out = format!(
        "top {} occurrence(s) of {:?} (visibility floor tau_min = {tau_min})\n",
        hits.len(),
        String::from_utf8_lossy(&pattern)
    );
    for (rank, (pos, p)) in hits.iter().enumerate() {
        out.push_str(&format!("  #{:<3} position {pos:>8}  p = {p:.6}\n", rank + 1));
    }
    Ok(out.trim_end().to_string())
}

fn cmd_list(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
    let tau: f64 = args.get_parsed("tau", 0.5)?;
    let tau_min: f64 = args.get_parsed("tau-min", tau.min(0.1))?;
    let docs = load_collection(path)?;
    let index = ListingIndex::build(&docs, tau_min).map_err(|e| e.to_string())?;
    let hits = index.query(&pattern, tau).map_err(|e| e.to_string())?;
    let mut out = format!(
        "{} of {} document(s) contain {:?} with probability >= {tau}\n",
        hits.len(),
        docs.len(),
        String::from_utf8_lossy(&pattern)
    );
    for h in &hits {
        out.push_str(&format!("  document {:>6}  Rel_max = {:.6}\n", h.doc, h.relevance));
    }
    Ok(out.trim_end().to_string())
}

fn cmd_stats(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let tau_min: f64 = args.get_parsed("tau-min", 0.1)?;
    let s = load_string(path)?;
    let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
    let st = index.stats();
    Ok(format!(
        "source positions      {}\n\
         uncertain fraction    {:.3}\n\
         total choices         {}\n\
         tau_min               {}\n\
         factors               {}\n\
         transformed length    {}\n\
         expansion             {:.2}x\n\
         build time            {:?}\n\
         index heap            {:.2} MiB",
        st.source_len,
        s.uncertain_fraction(),
        s.total_choices(),
        tau_min,
        st.num_factors,
        st.transformed_len,
        st.expansion(),
        st.build_time,
        st.heap_mib()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_search_round_trip() {
        let path = std::env::temp_dir().join("ustr_cli_gen.ustr");
        let path = path.to_string_lossy().into_owned();
        let msg = run(&argv(&format!(
            "generate --n 200 --theta 0.2 --seed 7 --out {path}"
        )))
        .unwrap();
        assert!(msg.contains("200 positions"));
        let stats = run(&argv(&format!("stats {path} --tau-min 0.1"))).unwrap();
        assert!(stats.contains("source positions      200"));
    }

    #[test]
    fn search_finds_paper_example() {
        let path = write_temp(
            "ustr_cli_fig3.ustr",
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 |\n\
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        );
        let out = run(&argv(&format!("search {path} AT --tau 0.4 --tau-min 0.05"))).unwrap();
        assert!(out.contains("1 occurrence(s)"), "{out}");
        assert!(out.contains("position        8"), "{out}");
    }

    #[test]
    fn top_k_orders_by_probability() {
        let path = write_temp("ustr_cli_top.ustr", "a:.9,b:.1 | a | a:.5,b:.5 | a");
        let out = run(&argv(&format!("top {path} aa --k 3 --tau-min 0.05"))).unwrap();
        assert!(out.contains("#1"), "{out}");
        let first = out.lines().find(|l| l.contains("#1")).unwrap();
        assert!(first.contains("0.9000"), "{out}");
    }

    #[test]
    fn list_reports_matching_documents() {
        let path = write_temp(
            "ustr_cli_docs.ustr",
            "A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5\n\
             A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1\n\
             # comment line is skipped\n\
             A:.4,F:.4,P:.2 | I:.3,L:.3,P:.3,T:.1 | A\n",
        );
        let out = run(&argv(&format!("list {path} BF --tau 0.1 --tau-min 0.05"))).unwrap();
        assert!(out.contains("1 of 3 document(s)"), "{out}");
        assert!(out.contains("document      0"), "{out}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&argv("search missing_file.ustr AT --tau 0.4")).is_err());
        assert!(run(&[]).is_err());
        let help = run(&argv("help")).unwrap();
        assert!(help.contains("usage"));
    }
}
