//! `ustr` — command-line front end for the uncertain-strings workspace.
//!
//! ```text
//! ustr generate --n 10000 --theta 0.3 --seed 42 --out data.ustr
//! ustr search data.ustr PATTERN --tau 0.3 [--tau-min 0.1]
//! ustr search --index data.idx PATTERN --tau 0.3
//! ustr top data.ustr PATTERN --k 5 [--tau-min 0.1]
//! ustr list collection.ustr PATTERN --tau 0.3   (one document per line)
//! ustr stats data.ustr [--tau-min 0.1]
//! ustr stats --live HOST:PORT   (scrape a running serve-net server)
//! ustr build-index data.ustr --out data.idx --kind threshold|approx|listing
//! ustr build-collection collection.ustr --out data.coll [--epsilon 0.05]
//! ustr serve-batch (INDEXDIR | FILE.coll | FILE) queries.txt --threads 4
//! ustr trace data.coll queries.txt --sample-rate 1.0 --out traces.json
//! ```
//!
//! Files hold uncertain strings in the text format of
//! [`UncertainString::parse`]; `generate` writes one. For `list`, each
//! non-empty line is one document. `build-index` snapshots a built index to
//! disk (`ustr-store` format) — `--kind` selects the index type (`threshold`
//! is the default §5 substring index; `approx` is the §7 ε-approximate
//! index; `listing` builds the §6 collection index from a one-document-per-
//! line file) — and `search --index` loads one instead of rebuilding.
//! `build-collection` packs a whole collection (per-document substring
//! indexes, plus approx indexes when `--epsilon` is given) into one `.coll`
//! snapshot. `serve-batch` answers a query file over a snapshot directory, a
//! `.coll` collection snapshot, or a plain collection file using the
//! `ustr-service` concurrent engine; query lines are either the legacy
//! `PATTERN TAU` (threshold search) or mixed-mode
//! `search|top|list|approx PATTERN ARG` lines, where `ARG` is τ (or K for
//! `top`). `--quiet` on any query command prints result rows only, for
//! scripting.

#![forbid(unsafe_code)]

mod args;

use std::fs;
use std::process::ExitCode;

use args::Args;
use ustr_core::{ApproxIndex, Index, ListingIndex};
use ustr_live::{LiveConfig, LiveService};
use ustr_service::{QueryRequest, QueryResponse, QueryService, ServiceConfig};
use ustr_store::{Snapshot, COLLECTION_MAGIC, MAGIC};
use ustr_uncertain::UncertainString;
use ustr_workload::{generate_string, DatasetConfig};

/// `(subcommand, usage, one-line description)` for every command.
const COMMANDS: &[(&str, &str, &str)] = &[
    (
        "generate",
        "ustr generate --n N --theta T --seed S [--out FILE]",
        "write a synthetic uncertain string",
    ),
    (
        "search",
        "ustr search (FILE | --index FILE.idx) PATTERN --tau T [--tau-min T0] [--quiet]",
        "probable occurrences of PATTERN",
    ),
    (
        "top",
        "ustr top FILE PATTERN --k K [--tau-min T0] [--quiet]",
        "the K most probable occurrences",
    ),
    (
        "list",
        "ustr list FILE PATTERN --tau T [--tau-min T0] [--quiet]",
        "documents containing PATTERN",
    ),
    (
        "stats",
        "ustr stats (FILE | --live HOST:PORT) [--tau-min T0] [--json]",
        "construction statistics, a .coll/.idx manifest, or a live server's telemetry",
    ),
    (
        "build-index",
        "ustr build-index FILE --out FILE.idx [--kind threshold|approx|listing] [--tau-min T0] [--epsilon E] [--quiet]",
        "build and snapshot an index",
    ),
    (
        "build-collection",
        "ustr build-collection FILE --out FILE.coll [--tau-min T0] [--epsilon E] [--shards S] [--quiet]",
        "pack a collection into one snapshot file",
    ),
    (
        "serve-batch",
        "ustr serve-batch (INDEXDIR | FILE.coll | FILE) QUERIES.txt --threads N [--shards S] [--cache C] [--tau-min T0] [--epsilon E] [--slow-query-us N] [--quiet]",
        "answer a (mixed-mode) query batch concurrently",
    ),
    (
        "ingest",
        "ustr ingest LIVEDIR FILE [--tau-min T0] [--epsilon E] [--seal-threshold N] [--quiet]",
        "append documents to a live collection (WAL + memtable)",
    ),
    (
        "delete",
        "ustr delete LIVEDIR ID... [--quiet]",
        "tombstone live documents by stable id",
    ),
    (
        "compact",
        "ustr compact LIVEDIR [--quiet]",
        "seal the memtable and merge all segments into one",
    ),
    (
        "serve-live",
        "ustr serve-live LIVEDIR QUERIES.txt [--threads N] [--cache C] [--slow-query-us N] [--quiet]",
        "answer a (mixed-mode) query batch over a live collection",
    ),
    (
        "serve-net",
        "ustr serve-net (LIVEDIR | INDEXDIR | FILE.coll | FILE) --addr HOST:PORT \
         [--threads N] [--io-threads N] [--inflight N] [--max-conns N] [--port-file PATH] \
         [--metrics-addr HOST:PORT] [--trace-sample F] [--slow-query-us N] \
         [--idle-timeout-s N] [--error-budget N] [--tau-min T0] [--epsilon E] [--quiet]",
        "serve queries over TCP (ustr-net wire protocol)",
    ),
    (
        "client",
        "ustr client HOST:PORT QUERIES.txt [--trace] [--timeout-ms N] [--retries N] [--quiet]",
        "answer a (mixed-mode) query batch over a TCP connection",
    ),
    (
        "trace",
        "ustr trace (LIVEDIR | INDEXDIR | FILE.coll | FILE) QUERIES.txt \
         [--sample-rate F] [--out FILE.json] [--threads N] [--shards S] [--cache C] \
         [--tau-min T0] [--epsilon E] [--quiet]",
        "answer a query batch with tracing on and export Chrome trace JSON",
    ),
];

/// Usage text for one subcommand, or the full listing for unknown input.
fn usage_for(command: Option<&str>) -> String {
    if let Some(cmd) = command {
        if let Some((_, usage, _)) = COMMANDS.iter().find(|(name, _, _)| *name == cmd) {
            return format!("usage: {usage}");
        }
    }
    let mut out = String::from("usage:\n");
    for (_, usage, what) in COMMANDS {
        out.push_str(&format!("  {usage}\n      {what}\n"));
    }
    out.push_str("  ustr help");
    out
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Only the failing subcommand's usage, not the whole blob.
            let cmd = argv.first().map(|s| s.as_str());
            eprintln!("error: {e}\n{}", usage_for(cmd));
            ExitCode::FAILURE
        }
    }
}

/// Dispatches a parsed command line; returns the text to print.
fn run(argv: &[String]) -> Result<String, String> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "search" => cmd_search(&args),
        "top" => cmd_top(&args),
        "list" => cmd_list(&args),
        "stats" => cmd_stats(&args),
        "build-index" => cmd_build_index(&args),
        "build-collection" => cmd_build_collection(&args),
        "serve-batch" => cmd_serve_batch(&args),
        "ingest" => cmd_ingest(&args),
        "delete" => cmd_delete(&args),
        "compact" => cmd_compact(&args),
        "serve-live" => cmd_serve_live(&args),
        "serve-net" => cmd_serve_net(&args),
        "client" => cmd_client(&args),
        "trace" => cmd_trace(&args),
        "help" | "--help" => Ok(usage_for(None)),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load_string(path: &str) -> Result<UncertainString, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Newlines are treated as whitespace so long strings can wrap.
    let joined = text.replace(['\n', '\r'], " ");
    UncertainString::parse(joined.trim()).map_err(|e| format!("{path}: {e}"))
}

fn load_collection(path: &str) -> Result<Vec<UncertainString>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .enumerate()
        .map(|(i, l)| UncertainString::parse(l).map_err(|e| format!("{path}:{}: {e}", i + 1)))
        .collect()
}

fn cmd_generate(args: &Args) -> Result<String, String> {
    let n: usize = args.get_parsed("n", 10_000)?;
    let theta: f64 = args.get_parsed("theta", 0.2)?;
    let seed: u64 = args.get_parsed("seed", 42)?;
    let s = generate_string(&DatasetConfig::new(n, theta, seed));
    let rendered = s.to_string().replace(" | ", " |\n");
    match args.get("out") {
        Some(path) => {
            fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!(
                "wrote {} positions (theta={theta}, seed={seed}) to {path}",
                s.len()
            ))
        }
        None => Ok(rendered),
    }
}

fn cmd_search(args: &Args) -> Result<String, String> {
    let quiet = args.flag("quiet");
    let tau: f64 = args.get_parsed("tau", 0.5)?;
    // With --index the snapshot supplies the text and tau_min; otherwise the
    // index is built from the uncertain-string file.
    let (index, pattern) = match args.get("index") {
        Some(idx_path) => {
            let index = Index::load(idx_path).map_err(|e| e.to_string())?;
            (index, args.positional(0, "PATTERN")?.as_bytes().to_vec())
        }
        None => {
            let path = args.positional(0, "FILE")?;
            let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
            let tau_min: f64 = args.get_parsed("tau-min", tau.min(0.1))?;
            let s = load_string(path)?;
            let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
            (index, pattern)
        }
    };
    let hits = index.query(&pattern, tau).map_err(|e| e.to_string())?;
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "{} occurrence(s) of {:?} with probability >= {tau}\n",
            hits.len(),
            String::from_utf8_lossy(&pattern)
        ));
    }
    for &(pos, p) in hits.hits() {
        if quiet {
            out.push_str(&format!("{pos} {p:.9}\n"));
        } else {
            out.push_str(&format!("  position {pos:>8}  p = {p:.6}\n"));
        }
    }
    Ok(out.trim_end().to_string())
}

fn cmd_build_index(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let out_path = args
        .get("out")
        .ok_or_else(|| "missing required option --out".to_string())?;
    let tau_min: f64 = args.get_parsed("tau-min", 0.1)?;
    let kind = args.get("kind").unwrap_or("threshold");
    let stats = match kind {
        "threshold" => {
            let s = load_string(path)?;
            let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
            index.save(out_path).map_err(|e| e.to_string())?;
            index.stats().clone()
        }
        "approx" => {
            let epsilon: f64 = args.get_parsed("epsilon", 0.05)?;
            let s = load_string(path)?;
            let index = ApproxIndex::build(&s, tau_min, epsilon).map_err(|e| e.to_string())?;
            index.save(out_path).map_err(|e| e.to_string())?;
            index.stats().clone()
        }
        "listing" => {
            let docs = load_collection(path)?;
            let index = ListingIndex::build(&docs, tau_min).map_err(|e| e.to_string())?;
            index.save(out_path).map_err(|e| e.to_string())?;
            index.stats().clone()
        }
        other => {
            return Err(format!(
                "unknown --kind {other:?} (expected threshold, approx, or listing)"
            ))
        }
    };
    if args.flag("quiet") {
        return Ok(String::new());
    }
    let bytes = fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "wrote {out_path} ({kind}): {} source positions, {} factors, tau_min {tau_min}, \
         {bytes} bytes (built in {:?})",
        stats.source_len, stats.num_factors, stats.build_time
    ))
}

fn cmd_build_collection(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let out_path = args
        .get("out")
        .ok_or_else(|| "missing required option --out".to_string())?;
    let tau_min: f64 = args.get_parsed("tau-min", 0.05)?;
    let epsilon: Option<f64> = match args.get("epsilon") {
        Some(_) => Some(args.get_parsed("epsilon", 0.05)?),
        None => None,
    };
    let config = ServiceConfig {
        threads: 1,
        shards: args.get_parsed("shards", 0usize)?,
        cache_capacity: 0,
        epsilon,
    };
    let docs = load_collection(path)?;
    let service = QueryService::build(&docs, tau_min, config).map_err(|e| e.to_string())?;
    service
        .save_collection(out_path)
        .map_err(|e| e.to_string())?;
    if args.flag("quiet") {
        return Ok(String::new());
    }
    let bytes = fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "wrote {out_path}: {} document(s) in {} shard(s), approx indexes: {}, {bytes} bytes",
        service.num_docs(),
        service.num_shards(),
        if service.has_approx_indexes() {
            "yes"
        } else {
            "no"
        },
    ))
}

/// Parses a (mixed-mode) queries file. Each non-comment line is either the
/// legacy `PATTERN TAU` (threshold search) or an explicit mode line:
/// `search PATTERN TAU`, `top PATTERN K`, `list PATTERN TAU`,
/// `approx PATTERN TAU`.
fn load_queries(path: &str) -> Result<Vec<QueryRequest>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut queries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let bad = |what: &str| format!("{path}:{}: invalid {what}", lineno + 1);
        let tau_of = |tok: &str| tok.parse::<f64>().map_err(|_| bad("TAU"));
        let request = match tokens.as_slice() {
            [pattern, tau] | ["search", pattern, tau] => QueryRequest::Threshold {
                pattern: pattern.as_bytes().to_vec(),
                tau: tau_of(tau)?,
            },
            ["top", pattern, k] => QueryRequest::TopK {
                pattern: pattern.as_bytes().to_vec(),
                k: k.parse().map_err(|_| bad("K"))?,
            },
            ["list", pattern, tau] => QueryRequest::Listing {
                pattern: pattern.as_bytes().to_vec(),
                tau: tau_of(tau)?,
            },
            ["approx", pattern, tau] => QueryRequest::Approx {
                pattern: pattern.as_bytes().to_vec(),
                tau: tau_of(tau)?,
            },
            _ => {
                return Err(format!(
                    "{path}:{}: expected 'PATTERN TAU' or 'search|top|list|approx PATTERN ARG'",
                    lineno + 1
                ))
            }
        };
        queries.push(request);
    }
    Ok(queries)
}

/// Human-readable one-line description of a request (for batch output).
fn describe_request(req: &QueryRequest) -> String {
    match req {
        QueryRequest::Threshold { pattern, tau } => {
            format!("search {:?} tau={tau}", String::from_utf8_lossy(pattern))
        }
        QueryRequest::TopK { pattern, k } => {
            format!("top {:?} k={k}", String::from_utf8_lossy(pattern))
        }
        QueryRequest::Listing { pattern, tau } => {
            format!("list {:?} tau={tau}", String::from_utf8_lossy(pattern))
        }
        QueryRequest::Approx { pattern, tau } => {
            format!("approx {:?} tau={tau}", String::from_utf8_lossy(pattern))
        }
    }
}

/// `true` when `path` is a single-file collection snapshot (by magic).
fn is_collection_file(path: &str) -> bool {
    let mut prefix = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut prefix))
        .map(|()| prefix == COLLECTION_MAGIC)
        .unwrap_or(false)
}

/// Detects a *static* source's shape (snapshot directory, `.coll`
/// snapshot, or plain collection text file), rejects `--tau-min`/
/// `--epsilon` for snapshot sources (they would be silently ignored —
/// snapshots carry their own), and loads or builds the service. Shared by
/// `serve-batch` and `serve-net`.
fn load_static_service(source: &str, args: &Args) -> Result<QueryService, String> {
    let is_dir = fs::metadata(source)
        .map_err(|e| format!("cannot read {source}: {e}"))?
        .is_dir();
    let from_snapshots = is_dir || is_collection_file(source);
    if from_snapshots && args.get("tau-min").is_some() {
        return Err(
            "--tau-min applies only when building from a collection file; \
             snapshots carry their own tau_min"
                .to_string(),
        );
    }
    if from_snapshots && args.get("epsilon").is_some() {
        return Err(
            "--epsilon applies only when building from a collection file; \
             snapshot sources serve the approx indexes they already carry \
             (build them in with `ustr build-collection --epsilon`)"
                .to_string(),
        );
    }
    let epsilon: Option<f64> = match args.get("epsilon") {
        Some(_) => Some(args.get_parsed("epsilon", 0.05)?),
        None => None,
    };
    let config = ServiceConfig {
        threads: args.get_parsed("threads", 0usize)?,
        shards: args.get_parsed("shards", 0usize)?,
        cache_capacity: args.get_parsed("cache", 1024usize)?,
        epsilon,
    };
    if is_dir {
        QueryService::load_dir(source, config).map_err(|e| e.to_string())
    } else if from_snapshots {
        QueryService::load_collection(source, config).map_err(|e| e.to_string())
    } else {
        let docs = load_collection(source)?;
        let tau_min: f64 = args.get_parsed("tau-min", 0.05)?;
        QueryService::build(&docs, tau_min, config).map_err(|e| e.to_string())
    }
}

/// Applies `--slow-query-us` (when given) to an engine's slow-query log.
fn apply_slow_query_threshold(args: &Args, log: &ustr_obs::SlowQueryLog) -> Result<(), String> {
    if args.get("slow-query-us").is_some() {
        log.set_threshold_us(args.get_parsed("slow-query-us", ustr_obs::DEFAULT_SLOW_QUERY_US)?);
    }
    Ok(())
}

/// Renders the slow-query section appended to verbose batch output;
/// empty when no query crossed the threshold.
fn slow_query_summary(log: &ustr_obs::SlowQueryLog) -> String {
    if log.is_empty() {
        return String::new();
    }
    let mut out = String::from("slow queries (worst first):\n");
    for entry in log.worst(8) {
        out.push_str(&format!("  {}\n", entry.render()));
    }
    out
}

fn cmd_serve_batch(args: &Args) -> Result<String, String> {
    let source = args.positional(0, "INDEXDIR")?;
    let queries_path = args.positional(1, "QUERIES.txt")?;
    let quiet = args.flag("quiet");
    let queries = load_queries(queries_path)?;
    let start = std::time::Instant::now();
    let service = load_static_service(source, args)?;
    apply_slow_query_threshold(args, service.slow_log())?;
    let ready = start.elapsed();

    let t0 = std::time::Instant::now();
    let results = service.query_requests(&queries);
    let answered = t0.elapsed();

    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "{} document(s) in {} shard(s), {} thread(s); ready in {ready:?}, \
             {} query(ies) answered in {answered:?}\n",
            service.num_docs(),
            service.num_shards(),
            service.threads(),
            queries.len(),
        ));
        out.push_str(&cache_summary(service.cache_stats()));
        out.push_str(&slow_query_summary(service.slow_log()));
    }
    render_results(&mut out, &queries, &results, quiet);
    Ok(out.trim_end().to_string())
}

/// One summary line for the result cache: hits, misses, and hit ratio.
/// The counters are process-lifetime totals for the service instance (see
/// `QueryService::cache_stats`), which for a CLI invocation means totals
/// across this batch including its duplicate-request cache hits.
fn cache_summary((hits, misses): (u64, u64)) -> String {
    let total = hits + misses;
    let ratio = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64 * 100.0
    };
    format!("cache: {hits} hit(s), {misses} miss(es), hit ratio {ratio:.1}%\n")
}

/// Renders batch answers (shared by `serve-batch`, `serve-live`, and
/// `client` — the error type is local for in-process serving and the
/// transported `RemoteError` for TCP answers).
fn render_results<E: std::fmt::Display>(
    out: &mut String,
    queries: &[QueryRequest],
    results: &[Result<QueryResponse, E>],
    quiet: bool,
) {
    for (q, (request, result)) in queries.iter().zip(results.iter()).enumerate() {
        match result {
            Ok(QueryResponse::Threshold(hits)) | Ok(QueryResponse::Approx(hits)) => {
                if !quiet {
                    out.push_str(&format!(
                        "query {q} {}: {} document(s)\n",
                        describe_request(request),
                        hits.len()
                    ));
                }
                for doc_hits in hits.iter() {
                    for &(pos, p) in &doc_hits.hits {
                        if quiet {
                            out.push_str(&format!("{q} {} {pos} {p:.9}\n", doc_hits.doc));
                        } else {
                            out.push_str(&format!(
                                "  doc {:>6} position {pos:>8} p = {p:.6}\n",
                                doc_hits.doc
                            ));
                        }
                    }
                }
            }
            Ok(QueryResponse::TopK(top)) => {
                if !quiet {
                    out.push_str(&format!(
                        "query {q} {}: {} occurrence(s)\n",
                        describe_request(request),
                        top.len()
                    ));
                }
                for (rank, hit) in top.iter().enumerate() {
                    if quiet {
                        out.push_str(&format!("{q} {} {} {:.9}\n", hit.doc, hit.pos, hit.prob));
                    } else {
                        out.push_str(&format!(
                            "  #{:<3} doc {:>6} position {:>8} p = {:.6}\n",
                            rank + 1,
                            hit.doc,
                            hit.pos,
                            hit.prob
                        ));
                    }
                }
            }
            Ok(QueryResponse::Listing(listed)) => {
                if !quiet {
                    out.push_str(&format!(
                        "query {q} {}: {} document(s)\n",
                        describe_request(request),
                        listed.len()
                    ));
                }
                for hit in listed.iter() {
                    if quiet {
                        out.push_str(&format!("{q} {} {:.9}\n", hit.doc, hit.relevance));
                    } else {
                        out.push_str(&format!(
                            "  doc {:>6} Rel_max = {:.6}\n",
                            hit.doc, hit.relevance
                        ));
                    }
                }
            }
            Err(e) => out.push_str(&format!(
                "query {q} {}: error: {e}\n",
                describe_request(request)
            )),
        }
    }
}

/// Builds a [`LiveConfig`] from the shared live-collection options.
fn live_config(args: &Args) -> Result<LiveConfig, String> {
    let epsilon = match args.get("epsilon") {
        Some(_) => Some(args.get_parsed("epsilon", 0.05)?),
        None => None,
    };
    Ok(LiveConfig {
        threads: args.get_parsed("threads", 0usize)?,
        cache_capacity: args.get_parsed("cache", 1024usize)?,
        tau_min: args.get_parsed("tau-min", 0.05)?,
        epsilon,
        seal_threshold: args.get_parsed("seal-threshold", 64usize)?,
        compact_min_segments: args.get_parsed("compact-min", 4usize)?,
    })
}

fn cmd_ingest(args: &Args) -> Result<String, String> {
    let dir = args.positional(0, "LIVEDIR")?;
    let file = args.positional(1, "FILE")?;
    let docs = load_collection(file)?;
    let live = LiveService::open(dir, live_config(args)?).map_err(|e| e.to_string())?;
    let mut first = None;
    let mut last = None;
    for d in docs {
        let id = live.insert(d).map_err(|e| e.to_string())?;
        first.get_or_insert(id);
        last = Some(id);
    }
    live.wait_idle().map_err(|e| e.to_string())?;
    if args.flag("quiet") {
        return Ok(match (first, last) {
            (Some(a), Some(b)) => format!("{a} {b}"),
            _ => String::new(),
        });
    }
    Ok(match (first, last) {
        (Some(a), Some(b)) => format!(
            "ingested documents {a}..={b}: {} live document(s), {} sealed segment(s), \
             {} memtable document(s)",
            live.num_docs(),
            live.num_segments(),
            live.memtable_len(),
        ),
        _ => "nothing to ingest".to_string(),
    })
}

/// Ensures `dir` already holds a live collection. Administrative commands
/// (`delete`, `compact`, `serve-live`) must not materialize a brand-new
/// live directory on a mistyped path — only `ingest` creates one.
fn require_live_dir(dir: &str) -> Result<(), String> {
    let p = std::path::Path::new(dir);
    if p.join(ustr_live::MANIFEST_FILE).exists() || p.join(ustr_live::WAL_FILE).exists() {
        Ok(())
    } else {
        Err(format!(
            "{dir} is not a live collection directory (no MANIFEST or wal.log); \
             create one with `ustr ingest`"
        ))
    }
}

fn cmd_delete(args: &Args) -> Result<String, String> {
    let dir = args.positional(0, "LIVEDIR")?;
    require_live_dir(dir)?;
    if args.positional.len() < 2 {
        return Err("missing argument: ID".to_string());
    }
    let ids: Vec<u64> = args.positional[1..]
        .iter()
        .map(|s| s.parse().map_err(|_| format!("invalid document id {s:?}")))
        .collect::<Result<_, _>>()?;
    let live = LiveService::open(dir, LiveConfig::default()).map_err(|e| e.to_string())?;
    for id in &ids {
        live.delete(*id).map_err(|e| e.to_string())?;
    }
    if args.flag("quiet") {
        return Ok(String::new());
    }
    Ok(format!(
        "tombstoned {} document(s); {} live document(s) remain",
        ids.len(),
        live.num_docs()
    ))
}

fn cmd_compact(args: &Args) -> Result<String, String> {
    let dir = args.positional(0, "LIVEDIR")?;
    require_live_dir(dir)?;
    let live = LiveService::open(dir, LiveConfig::default()).map_err(|e| e.to_string())?;
    let before = live.num_segments();
    live.flush().map_err(|e| e.to_string())?;
    live.compact().map_err(|e| e.to_string())?;
    live.wait_idle().map_err(|e| e.to_string())?;
    if args.flag("quiet") {
        return Ok(String::new());
    }
    Ok(format!(
        "compacted {before} segment(s) (+ memtable) into {}; {} live document(s)",
        live.num_segments(),
        live.num_docs()
    ))
}

fn cmd_serve_live(args: &Args) -> Result<String, String> {
    let dir = args.positional(0, "LIVEDIR")?;
    require_live_dir(dir)?;
    let queries_path = args.positional(1, "QUERIES.txt")?;
    let quiet = args.flag("quiet");
    let queries = load_queries(queries_path)?;
    let start = std::time::Instant::now();
    let live = LiveService::open(dir, live_config(args)?).map_err(|e| e.to_string())?;
    apply_slow_query_threshold(args, live.slow_log())?;
    let ready = start.elapsed();
    let t0 = std::time::Instant::now();
    let results = live.query_requests(&queries);
    let answered = t0.elapsed();
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "{} live document(s): {} sealed segment(s) + {} memtable document(s); \
             ready in {ready:?}, {} query(ies) answered in {answered:?}\n",
            live.num_docs(),
            live.num_segments(),
            live.memtable_len(),
            queries.len(),
        ));
        out.push_str(&cache_summary(live.cache_stats()));
        out.push_str(&slow_query_summary(live.slow_log()));
    }
    render_results(&mut out, &queries, &results, quiet);
    Ok(out.trim_end().to_string())
}

/// Assembles the query backend `serve-net` wraps: a live directory, a
/// snapshot directory, a `.coll` collection snapshot, or a plain collection
/// text file — the same source shapes `serve-batch`/`serve-live` accept.
fn net_backend(
    source: &str,
    args: &Args,
) -> Result<(std::sync::Arc<dyn ustr_net::QueryBackend>, String), String> {
    use std::sync::Arc;
    // Live directories take the live options for the first-open case
    // (exactly like serve-live; an existing directory adopts its recorded
    // values); every static shape goes through the shared
    // `load_static_service` path, flag validation included.
    let p = std::path::Path::new(source);
    if p.is_dir()
        && (p.join(ustr_live::MANIFEST_FILE).exists() || p.join(ustr_live::WAL_FILE).exists())
    {
        let live = LiveService::open(source, live_config(args)?).map_err(|e| e.to_string())?;
        apply_slow_query_threshold(args, live.slow_log())?;
        let what = format!("live directory {source} ({} document(s))", live.num_docs());
        return Ok((Arc::new(live), what));
    }
    let service = load_static_service(source, args)?;
    apply_slow_query_threshold(args, service.slow_log())?;
    let what = format!("{source} ({} document(s))", service.num_docs());
    Ok((Arc::new(service), what))
}

/// Parses a sampling-fraction flag (`0.0..=1.0`) into the tracer's integer
/// parts-per-[`ustr_obs::SAMPLE_SCALE`] rate. The float is a CLI
/// convenience only: the tracer's sampling decision itself is pure integer
/// arithmetic (see INVARIANTS.md on deterministic samplers).
fn sample_permyriad(args: &Args, flag: &str) -> Result<u32, String> {
    let rate: f64 = args.get_parsed(flag, 1.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--{flag} must be within 0.0..=1.0, got {rate}"));
    }
    Ok((rate * f64::from(ustr_obs::SAMPLE_SCALE)).round() as u32)
}

fn cmd_serve_net(args: &Args) -> Result<String, String> {
    let source = args.positional(0, "SOURCE")?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let quiet = args.flag("quiet");
    let (backend, what) = net_backend(source, args)?;
    // --trace-sample turns the backend engine's tracer on before the first
    // connection lands, so every served query is eligible for sampling.
    if args.get("trace-sample").is_some() {
        let permyriad = sample_permyriad(args, "trace-sample")?;
        backend
            .tracer()
            .ok_or_else(|| "this backend has no tracer to sample".to_string())?
            .set_sample_permyriad(permyriad);
    }
    // --idle-timeout-s 0 (the default) keeps idle sessions forever;
    // --error-budget 0 (the default) never closes on failing requests.
    let idle_timeout_s = args.get_parsed("idle-timeout-s", 0u64)?;
    let config = ustr_net::ServerConfig {
        threads: args.get_parsed("threads", 0usize)?,
        io_threads: args.get_parsed("io-threads", 0usize)?,
        inflight: args.get_parsed("inflight", 64usize)?,
        max_conns: args.get_parsed("max-conns", 0usize)?,
        idle_timeout: (idle_timeout_s > 0).then(|| std::time::Duration::from_secs(idle_timeout_s)),
        error_budget: args.get_parsed("error-budget", 0u32)?,
        ..ustr_net::ServerConfig::default()
    };
    let max_conns = config.max_conns;
    let server = ustr_net::NetServer::serve(addr, backend, config)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = server.local_addr();
    // The listening line (and optional port file) must land *before* the
    // server blocks, so scripts can discover an ephemeral port.
    if let Some(path) = args.get("port-file") {
        fs::write(path, format!("{bound}\n")).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    // Optional plaintext exposition endpoint: process-global registry +
    // kernel totals + this server's (and its backend's) instance metrics,
    // scraped over HTTP while the query port serves traffic. The same
    // endpoint serves the backend's finished traces as Chrome trace JSON
    // on /traces (an empty valid document until sampling is on).
    let _metrics_endpoint = match args.get("metrics-addr") {
        Some(maddr) => {
            let server_source = server.metrics_source();
            let source: ustr_obs::SnapshotFn = std::sync::Arc::new(move || {
                let mut snap = ustr_obs::global().snapshot();
                let k = ustr_uncertain::kstats::kernel_totals();
                snap.counters
                    .insert("kernel.candidates".into(), k.candidates);
                snap.counters.insert("kernel.verified".into(), k.verified);
                snap.counters.insert("kernel.kernel_ns".into(), k.kernel_ns);
                snap.merge(&server_source());
                snap
            });
            let traces: ustr_obs::TextFn = std::sync::Arc::new(server.trace_source());
            let endpoint = ustr_obs::MetricsServer::serve_routes(maddr, source, Some(traces))
                .map_err(|e| format!("bind metrics {maddr}: {e}"))?;
            if !quiet {
                println!("metrics on http://{}/metrics", endpoint.local_addr());
                println!("traces  on http://{}/traces", endpoint.local_addr());
            }
            Some(endpoint)
        }
        None => None,
    };
    if !quiet {
        println!(
            "serving {what} on {bound} (ustr-net protocol v{})",
            ustr_net::PROTOCOL_VERSION
        );
        if max_conns > 0 {
            println!("will shut down after {max_conns} connection(s)");
        }
    }
    server.wait();
    server.shutdown();
    if quiet {
        return Ok(String::new());
    }
    let snap = server.metrics_snapshot();
    let total = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    Ok(format!(
        "served {what} on {bound}: {} connection(s), {} request(s), \
         {} bytes in, {} bytes out; shut down cleanly",
        total("net.conns_accepted"),
        total("net.requests"),
        total("net.bytes_in"),
        total("net.bytes_out"),
    ))
}

fn cmd_client(args: &Args) -> Result<String, String> {
    let addr = args.positional(0, "HOST:PORT")?;
    let queries_path = args.positional(1, "QUERIES.txt")?;
    let quiet = args.flag("quiet");
    let traced = args.flag("trace");
    // --timeout-ms puts one deadline on connect, reads, and writes;
    // --retries N allows N reconnect-and-retry rounds past the first try.
    let timeout_ms = args.get_parsed("timeout-ms", 0u64)?;
    let retries = args.get_parsed("retries", 0u32)?;
    if traced && retries > 0 {
        return Err("--retries applies to untraced batches only (drop --trace)".into());
    }
    let deadline = (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    let config = ustr_net::ClientConfig {
        connect_timeout: deadline,
        read_timeout: deadline,
        write_timeout: deadline,
        ..ustr_net::ClientConfig::default()
    };
    let queries = load_queries(queries_path)?;
    if retries > 0 {
        let t0 = std::time::Instant::now();
        let policy = ustr_net::RetryPolicy {
            max_attempts: retries + 1,
            ..ustr_net::RetryPolicy::default()
        };
        let mut client = ustr_net::ResilientClient::new(addr.to_string(), policy, config);
        let results = client
            .query_requests(&queries)
            .map_err(|e| format!("{addr}: {e}"))?;
        let info = client.server_info().map_err(|e| format!("{addr}: {e}"))?;
        let answered = t0.elapsed();
        let stats = client.stats();
        let mut out = String::new();
        if !quiet {
            out.push_str(&format!(
                "{} document(s) at {addr} (protocol v{}, tau_min {}); \
                 {} query(ies) answered in {answered:?}\n",
                info.num_docs,
                info.protocol_version,
                info.tau_min,
                queries.len(),
            ));
            if stats.retries > 0 {
                out.push_str(&format!(
                    "resilience: {} retry(ies), {} reconnect(s), {} timeout(s)\n",
                    stats.retries, stats.reconnects, stats.timeouts,
                ));
            }
        }
        render_results(&mut out, &queries, &results, quiet);
        return Ok(out.trim_end().to_string());
    }
    let t0 = std::time::Instant::now();
    let mut client = ustr_net::NetClient::connect_with_config(addr, config)
        .map_err(|e| format!("{addr}: {e}"))?;
    let info = client.server_info();
    let (results, timings) = if traced {
        // Force-sampled contexts (one distinct trace id per query) so the
        // server keeps every trace and reports its per-stage timings.
        let contexts: Vec<ustr_obs::TraceContext> = (0..queries.len())
            .map(|q| ustr_obs::TraceContext {
                trace_id: q as u128 + 1,
                parent_span: 0,
                sampled: true,
            })
            .collect();
        let timed = client
            .query_requests_traced(&queries, &contexts)
            .map_err(|e| format!("{addr}: {e}"))?;
        let (results, timings): (Vec<_>, Vec<_>) = timed.into_iter().unzip();
        (results, Some(timings))
    } else {
        let results = client
            .query_requests(&queries)
            .map_err(|e| format!("{addr}: {e}"))?;
        (results, None)
    };
    let answered = t0.elapsed();
    let _ = client.goodbye();
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "{} document(s) at {addr} (protocol v{}, tau_min {}); \
             {} query(ies) answered in {answered:?}\n",
            info.num_docs,
            info.protocol_version,
            info.tau_min,
            queries.len(),
        ));
        if let Some(timings) = &timings {
            for (q, stages) in timings.iter().enumerate() {
                if stages.is_empty() {
                    continue;
                }
                let line: Vec<String> = stages
                    .iter()
                    .map(|(name, us)| format!("{name} {us}us"))
                    .collect();
                out.push_str(&format!("query {q} server stages: {}\n", line.join(", ")));
            }
        }
    }
    render_results(&mut out, &queries, &results, quiet);
    Ok(out.trim_end().to_string())
}

/// `trace`: answer a batch in-process with tracing at `--sample-rate`
/// (default 1.0 — every query), then export the finished traces as Chrome
/// `trace_event` JSON (`--out`, default `traces.json`) and print the span
/// trees. The same backend shapes as `serve-net` are accepted.
fn cmd_trace(args: &Args) -> Result<String, String> {
    let source = args.positional(0, "SOURCE")?;
    let queries_path = args.positional(1, "QUERIES.txt")?;
    let quiet = args.flag("quiet");
    let out_path = args.get("out").unwrap_or("traces.json");
    let queries = load_queries(queries_path)?;
    let (backend, what) = net_backend(source, args)?;
    let tracer = backend
        .tracer()
        .ok_or_else(|| "this backend has no tracer".to_string())?;
    tracer.set_sample_permyriad(sample_permyriad(args, "sample-rate")?);

    let t0 = std::time::Instant::now();
    let parents = vec![None; queries.len()];
    let timed = backend.query_requests_traced(&queries, &parents);
    let answered = t0.elapsed();
    let (results, summaries): (Vec<_>, Vec<_>) = timed.into_iter().unzip::<_, _, Vec<_>, Vec<_>>();

    let exporter = ustr_obs::TraceExporter::new(std::sync::Arc::clone(&tracer));
    let json = exporter.chrome_json();
    fs::write(out_path, &json).map_err(|e| format!("cannot write {out_path}: {e}"))?;

    let kept = summaries.iter().flatten().filter(|s| s.kept).count();
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "traced {} query(ies) against {what} in {answered:?}; {kept} trace(s) kept\n\
             wrote Chrome trace JSON to {out_path}\n",
            queries.len(),
        ));
        let trees = exporter.render_text();
        if !trees.is_empty() {
            out.push_str(&trees);
        }
    }
    render_results(&mut out, &queries, &results, quiet);
    Ok(out.trim_end().to_string())
}

fn cmd_top(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
    let k: usize = args.get_parsed("k", 5)?;
    let tau_min: f64 = args.get_parsed("tau-min", 0.05)?;
    let s = load_string(path)?;
    let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
    let hits = index.query_top_k(&pattern, k).map_err(|e| e.to_string())?;
    let quiet = args.flag("quiet");
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "top {} occurrence(s) of {:?} (visibility floor tau_min = {tau_min})\n",
            hits.len(),
            String::from_utf8_lossy(&pattern)
        ));
    }
    for (rank, (pos, p)) in hits.iter().enumerate() {
        if quiet {
            out.push_str(&format!("{pos} {p:.9}\n"));
        } else {
            out.push_str(&format!(
                "  #{:<3} position {pos:>8}  p = {p:.6}\n",
                rank + 1
            ));
        }
    }
    Ok(out.trim_end().to_string())
}

fn cmd_list(args: &Args) -> Result<String, String> {
    let path = args.positional(0, "FILE")?;
    let pattern = args.positional(1, "PATTERN")?.as_bytes().to_vec();
    let tau: f64 = args.get_parsed("tau", 0.5)?;
    let tau_min: f64 = args.get_parsed("tau-min", tau.min(0.1))?;
    let docs = load_collection(path)?;
    let index = ListingIndex::build(&docs, tau_min).map_err(|e| e.to_string())?;
    let hits = index.query(&pattern, tau).map_err(|e| e.to_string())?;
    let quiet = args.flag("quiet");
    let mut out = String::new();
    if !quiet {
        out.push_str(&format!(
            "{} of {} document(s) contain {:?} with probability >= {tau}\n",
            hits.len(),
            docs.len(),
            String::from_utf8_lossy(&pattern)
        ));
    }
    for h in &hits {
        if quiet {
            out.push_str(&format!("{} {:.9}\n", h.doc, h.relevance));
        } else {
            out.push_str(&format!(
                "  document {:>6}  Rel_max = {:.6}\n",
                h.doc, h.relevance
            ));
        }
    }
    Ok(out.trim_end().to_string())
}

/// `stats` on a `.coll` collection snapshot: the manifest alone is read —
/// format version, document count, per-document section sizes and
/// checksums — no index payload is loaded or decoded.
fn collection_stats(path: &str) -> Result<String, String> {
    let m = ustr_store::read_collection_manifest(path).map_err(|e| e.to_string())?;
    let total: u64 = m.entries.iter().map(|e| e.len).sum();
    let mut out = format!(
        "collection snapshot      {path}\n\
         format version           {}\n\
         documents                {}\n\
         shard plan hint          {}\n\
         sections                 {} ({total} payload bytes)\n",
        m.version,
        m.num_docs,
        m.shard_hint,
        m.entries.len(),
    );
    for e in &m.entries {
        out.push_str(&format!(
            "  doc {:>6} {:<9} {:>10} bytes at offset {:>10}  fnv1a {:016x}\n",
            e.doc,
            format!("{:?}", e.kind).to_lowercase(),
            e.len,
            e.offset,
            e.checksum
        ));
    }
    Ok(out.trim_end().to_string())
}

/// `stats` on a single-index `.idx` snapshot: header only.
fn snapshot_stats(path: &str) -> Result<String, String> {
    let h = ustr_store::read_header(path).map_err(|e| e.to_string())?;
    Ok(format!(
        "index snapshot           {path}\n\
         format version           {}\n\
         kind                     {:?}\n\
         payload                  {} bytes\n\
         payload checksum         fnv1a {:016x}",
        h.version, h.kind, h.payload_len, h.checksum
    ))
}

/// The first 8 bytes of a file (for magic sniffing); empty on any error.
fn file_magic(path: &str) -> [u8; 8] {
    let mut prefix = [0u8; 8];
    let _ =
        std::fs::File::open(path).and_then(|mut f| std::io::Read::read_exact(&mut f, &mut prefix));
    prefix
}

/// `stats --live`: scrape a running `serve-net` server's telemetry over
/// the wire protocol — one `StatsRequest` round trip (protocol v2+), or
/// one `StatsJsonRequest` round trip with `--json` (protocol v3+).
fn live_server_stats(addr: &str, json: bool) -> Result<String, String> {
    let mut client = ustr_net::NetClient::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let info = client.server_info();
    let text = if json {
        if info.protocol_version < 3 {
            return Err(format!(
                "{addr} speaks protocol v{} — JSON stats need v3 or newer",
                info.protocol_version
            ));
        }
        client.stats_json().map_err(|e| format!("{addr}: {e}"))?
    } else {
        if info.protocol_version < 2 {
            return Err(format!(
                "{addr} speaks protocol v{} — Stats needs v2 or newer",
                info.protocol_version
            ));
        }
        client.stats().map_err(|e| format!("{addr}: {e}"))?
    };
    let _ = client.goodbye();
    Ok(text.trim_end().to_string())
}

fn cmd_stats(args: &Args) -> Result<String, String> {
    if let Some(addr) = args.get("live") {
        return live_server_stats(addr, args.flag("json"));
    }
    if args.flag("json") {
        return Err("--json applies only to `stats --live` (the wire scrape)".to_string());
    }
    let path = args.positional(0, "FILE")?;
    // Snapshot artifacts are inspected from their manifests, without
    // loading any index.
    let magic = file_magic(path);
    if magic == COLLECTION_MAGIC {
        return collection_stats(path);
    }
    if magic == MAGIC {
        return snapshot_stats(path);
    }
    let tau_min: f64 = args.get_parsed("tau-min", 0.1)?;
    let s = load_string(path)?;
    let index = Index::build(&s, tau_min).map_err(|e| e.to_string())?;
    let st = index.stats();
    Ok(format!(
        "source positions      {}\n\
         uncertain fraction    {:.3}\n\
         total choices         {}\n\
         tau_min               {}\n\
         factors               {}\n\
         transformed length    {}\n\
         expansion             {:.2}x\n\
         build time            {:?}\n\
         index heap            {:.2} MiB",
        st.source_len,
        s.uncertain_fraction(),
        s.total_choices(),
        tau_min,
        st.num_factors,
        st.transformed_len,
        st.expansion(),
        st.build_time,
        st.heap_mib()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_search_round_trip() {
        let path = std::env::temp_dir().join("ustr_cli_gen.ustr");
        let path = path.to_string_lossy().into_owned();
        let msg = run(&argv(&format!(
            "generate --n 200 --theta 0.2 --seed 7 --out {path}"
        )))
        .unwrap();
        assert!(msg.contains("200 positions"));
        let stats = run(&argv(&format!("stats {path} --tau-min 0.1"))).unwrap();
        assert!(stats.contains("source positions      200"));
    }

    #[test]
    fn search_finds_paper_example() {
        let path = write_temp(
            "ustr_cli_fig3.ustr",
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 |\n\
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        );
        let out = run(&argv(&format!("search {path} AT --tau 0.4 --tau-min 0.05"))).unwrap();
        assert!(out.contains("1 occurrence(s)"), "{out}");
        assert!(out.contains("position        8"), "{out}");
    }

    #[test]
    fn top_k_orders_by_probability() {
        let path = write_temp("ustr_cli_top.ustr", "a:.9,b:.1 | a | a:.5,b:.5 | a");
        let out = run(&argv(&format!("top {path} aa --k 3 --tau-min 0.05"))).unwrap();
        assert!(out.contains("#1"), "{out}");
        let first = out.lines().find(|l| l.contains("#1")).unwrap();
        assert!(first.contains("0.9000"), "{out}");
    }

    #[test]
    fn list_reports_matching_documents() {
        let path = write_temp(
            "ustr_cli_docs.ustr",
            "A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5\n\
             A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1\n\
             # comment line is skipped\n\
             A:.4,F:.4,P:.2 | I:.3,L:.3,P:.3,T:.1 | A\n",
        );
        let out = run(&argv(&format!("list {path} BF --tau 0.1 --tau-min 0.05"))).unwrap();
        assert!(out.contains("1 of 3 document(s)"), "{out}");
        assert!(out.contains("document      0"), "{out}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&argv("search missing_file.ustr AT --tau 0.4")).is_err());
        assert!(run(&[]).is_err());
        let help = run(&argv("help")).unwrap();
        assert!(help.contains("usage"));
    }

    #[test]
    fn usage_is_per_subcommand() {
        let u = usage_for(Some("search"));
        assert!(u.contains("ustr search"), "{u}");
        assert!(!u.contains("serve-batch"), "only the failing command: {u}");
        let full = usage_for(Some("not-a-command"));
        assert!(full.contains("serve-batch") && full.contains("generate"));
        assert!(usage_for(None).contains("build-index"));
    }

    #[test]
    fn build_index_then_search_via_snapshot() {
        let data = write_temp(
            "ustr_cli_snap.ustr",
            "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 |\n\
             I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
        );
        let idx = std::env::temp_dir().join("ustr_cli_snap.idx");
        let idx = idx.to_string_lossy().into_owned();
        let msg = run(&argv(&format!(
            "build-index {data} --out {idx} --tau-min 0.05"
        )))
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        // Snapshot search equals rebuild search.
        let from_snap = run(&argv(&format!("search --index {idx} AT --tau 0.4"))).unwrap();
        let from_file = run(&argv(&format!("search {data} AT --tau 0.4 --tau-min 0.05"))).unwrap();
        assert_eq!(from_snap, from_file);
        assert!(from_snap.contains("position        8"), "{from_snap}");
        // Missing --out is a clean error.
        assert!(run(&argv(&format!("build-index {data}"))).is_err());
    }

    #[test]
    fn quiet_prints_result_rows_only() {
        let data = write_temp("ustr_cli_quiet.ustr", "a:.9,b:.1 | a | a:.5,b:.5 | a");
        let out = run(&argv(&format!(
            "search {data} aa --tau 0.3 --tau-min 0.05 --quiet"
        )))
        .unwrap();
        for line in out.lines() {
            let mut parts = line.split_whitespace();
            parts.next().unwrap().parse::<usize>().expect("position");
            parts.next().unwrap().parse::<f64>().expect("probability");
            assert!(parts.next().is_none());
        }
        let top = run(&argv(&format!(
            "top {data} aa --k 2 --tau-min 0.05 --quiet"
        )))
        .unwrap();
        assert!(!top.contains("occurrence"), "{top}");
    }

    #[test]
    fn serve_batch_answers_from_collection_and_snapshot_dir() {
        let docs = write_temp(
            "ustr_cli_serve_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\nA:.5,B:.5 | B | C\n",
        );
        let queries = write_temp("ustr_cli_serve_q.txt", "# comment\nAB 0.3\nC 0.9\nZZ 0.5\n");
        let out = run(&argv(&format!(
            "serve-batch {docs} {queries} --threads 4 --shards 2 --tau-min 0.05"
        )))
        .unwrap();
        assert!(out.contains("3 document(s)"), "{out}");
        assert!(
            out.contains("query 0 search \"AB\" tau=0.3: 2 document(s)"),
            "{out}"
        );

        // Snapshot directory route: save per-doc indexes, then serve.
        let dir = std::env::temp_dir().join("ustr_cli_serve_idx");
        let _ = fs::remove_dir_all(&dir);
        let collection = load_collection(&docs).unwrap();
        let service = QueryService::build(
            &collection,
            0.05,
            ServiceConfig {
                threads: 1,
                shards: 1,
                cache_capacity: 0,
                epsilon: None,
            },
        )
        .unwrap();
        service.save_dir(&dir).unwrap();
        let quiet = run(&argv(&format!(
            "serve-batch {} {queries} --threads 2 --quiet",
            dir.display()
        )))
        .unwrap();
        // Quiet rows: `query doc pos prob`, identical hits to the build route.
        assert!(quiet.lines().all(|l| l.split_whitespace().count() == 4));
        assert!(quiet.contains("0 0 0 0.9"), "{quiet}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_index_kinds_produce_loadable_snapshots() {
        let single = write_temp("ustr_cli_kind_one.ustr", "a:.9,b:.1 | a | a:.5,b:.5 | a");
        let multi = write_temp(
            "ustr_cli_kind_docs.ustr",
            "A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5\n\
             A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1\n",
        );
        let tmp = std::env::temp_dir();

        let approx = tmp.join("ustr_cli_kind.approx.idx");
        let msg = run(&argv(&format!(
            "build-index {single} --out {} --kind approx --tau-min 0.05 --epsilon 0.1",
            approx.display()
        )))
        .unwrap();
        assert!(msg.contains("(approx)"), "{msg}");
        let loaded = ApproxIndex::load(&approx).unwrap();
        assert!((loaded.epsilon() - 0.1).abs() < 1e-12);
        assert!(!loaded.query(b"aa", 0.3).unwrap().is_empty());

        let listing = tmp.join("ustr_cli_kind.listing.idx");
        let msg = run(&argv(&format!(
            "build-index {multi} --out {} --kind listing --tau-min 0.05",
            listing.display()
        )))
        .unwrap();
        assert!(msg.contains("(listing)"), "{msg}");
        let loaded = ListingIndex::load(&listing).unwrap();
        assert_eq!(loaded.num_docs(), 2);

        assert!(run(&argv(&format!(
            "build-index {single} --out /tmp/x.idx --kind bogus"
        )))
        .is_err());
        let _ = fs::remove_file(&approx);
        let _ = fs::remove_file(&listing);
    }

    #[test]
    fn build_collection_then_serve_mixed_modes() {
        let docs = write_temp(
            "ustr_cli_coll_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\nA:.5,B:.5 | B | C\n",
        );
        let queries = write_temp(
            "ustr_cli_coll_q.txt",
            "# every mode in one batch\n\
             AB 0.3\n\
             search C 0.9\n\
             top AB 2\n\
             list AB 0.3\n\
             approx AB 0.3\n",
        );
        let coll = std::env::temp_dir().join("ustr_cli_coll.coll");
        let msg = run(&argv(&format!(
            "build-collection {docs} --out {} --tau-min 0.05 --epsilon 0.05 --shards 2",
            coll.display()
        )))
        .unwrap();
        assert!(msg.contains("3 document(s)"), "{msg}");
        assert!(msg.contains("approx indexes: yes"), "{msg}");

        let out = run(&argv(&format!(
            "serve-batch {} {queries} --threads 2",
            coll.display()
        )))
        .unwrap();
        assert!(
            out.contains("query 0 search \"AB\" tau=0.3: 2 document(s)"),
            "{out}"
        );
        assert!(
            out.contains("query 2 top \"AB\" k=2: 2 occurrence(s)"),
            "{out}"
        );
        assert!(
            out.contains("query 3 list \"AB\" tau=0.3: 2 document(s)"),
            "{out}"
        );
        assert!(out.contains("query 4 approx \"AB\" tau=0.3"), "{out}");
        assert!(out.contains("#1"), "ranked output present: {out}");
        assert!(out.contains("Rel_max"), "listing output present: {out}");

        // --tau-min and --epsilon are rejected for snapshot sources: both
        // only apply when the service is built from a collection file.
        assert!(run(&argv(&format!(
            "serve-batch {} {queries} --tau-min 0.1",
            coll.display()
        )))
        .is_err());
        let err = run(&argv(&format!(
            "serve-batch {} {queries} --epsilon 0.1",
            coll.display()
        )))
        .unwrap_err();
        assert!(err.contains("--epsilon"), "{err}");
        let _ = fs::remove_file(&coll);
    }

    #[test]
    fn serve_batch_reports_cache_effectiveness() {
        let docs = write_temp(
            "ustr_cli_cachestats_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\n",
        );
        // The same query three times: one miss, then cache hits.
        let queries = write_temp("ustr_cli_cachestats_q.txt", "AB 0.3\nAB 0.3\nAB 0.3\n");
        let out = run(&argv(&format!(
            "serve-batch {docs} {queries} --threads 2 --tau-min 0.05"
        )))
        .unwrap();
        assert!(out.contains("cache:"), "{out}");
        assert!(out.contains("miss(es)"), "{out}");
        // --quiet suppresses the summary (result rows only).
        let quiet = run(&argv(&format!(
            "serve-batch {docs} {queries} --threads 2 --tau-min 0.05 --quiet"
        )))
        .unwrap();
        assert!(!quiet.contains("cache:"), "{quiet}");
    }

    #[test]
    fn stats_inspects_snapshots_without_loading_indexes() {
        let docs = write_temp(
            "ustr_cli_stats_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\nA:.5,B:.5 | B | C\n",
        );
        let coll = std::env::temp_dir().join("ustr_cli_stats.coll");
        run(&argv(&format!(
            "build-collection {docs} --out {} --tau-min 0.05 --epsilon 0.05",
            coll.display()
        )))
        .unwrap();
        let out = run(&argv(&format!("stats {}", coll.display()))).unwrap();
        assert!(out.contains("documents                3"), "{out}");
        assert!(out.contains("format version           1"), "{out}");
        assert!(out.contains("approx"), "approx sections listed: {out}");
        assert!(out.contains("fnv1a"), "checksums listed: {out}");

        let idx = std::env::temp_dir().join("ustr_cli_stats.idx");
        let single = write_temp("ustr_cli_stats_one.ustr", "a:.9,b:.1 | a");
        run(&argv(&format!(
            "build-index {single} --out {} --tau-min 0.05",
            idx.display()
        )))
        .unwrap();
        let out = run(&argv(&format!("stats {}", idx.display()))).unwrap();
        assert!(out.contains("kind                     Index"), "{out}");
        let _ = fs::remove_file(&coll);
        let _ = fs::remove_file(&idx);
    }

    #[test]
    fn live_lifecycle_ingest_delete_compact_serve() {
        let docs = write_temp(
            "ustr_cli_live_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\nA:.5,B:.5 | B | C\n",
        );
        let more = write_temp("ustr_cli_live_more.ustr", "A | B | A:.6,C:.4\n");
        let queries = write_temp(
            "ustr_cli_live_q.txt",
            "AB 0.3\ntop AB 3\nlist B 0.5\napprox AB 0.3\n",
        );
        let dir = std::env::temp_dir().join("ustr_cli_live_dir");
        let _ = fs::remove_dir_all(&dir);

        // Ingest with a tiny seal threshold: two documents seal, one stays
        // in the memtable.
        let msg = run(&argv(&format!(
            "ingest {} {docs} --tau-min 0.05 --seal-threshold 2 --compact-min 0",
            dir.display()
        )))
        .unwrap();
        assert!(msg.contains("ingested documents 0..=2"), "{msg}");
        assert!(msg.contains("1 sealed segment(s)"), "{msg}");
        assert!(msg.contains("1 memtable document(s)"), "{msg}");

        // Serve mixed modes over segments + memtable.
        let out = run(&argv(&format!(
            "serve-live {} {queries} --threads 2",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("3 live document(s)"), "{out}");
        assert!(
            out.contains("query 0 search \"AB\" tau=0.3: 2 document(s)"),
            "{out}"
        );
        assert!(out.contains("cache:"), "{out}");

        // Ingest more, tombstone one, compact everything into one segment.
        run(&argv(&format!("ingest {} {more} --quiet", dir.display()))).unwrap();
        let msg = run(&argv(&format!("delete {} 1", dir.display()))).unwrap();
        assert!(msg.contains("3 live document(s) remain"), "{msg}");
        let msg = run(&argv(&format!("compact {}", dir.display()))).unwrap();
        assert!(msg.contains("into 1"), "{msg}");

        // Deleted documents stay gone; the survivor ids are stable.
        let quiet = run(&argv(&format!(
            "serve-live {} {queries} --quiet",
            dir.display()
        )))
        .unwrap();
        assert!(!quiet.contains("cache:"), "{quiet}");
        assert!(quiet.contains("0 0 0 0.9"), "doc 0 answers: {quiet}");
        assert!(quiet.contains("0 3 0"), "new doc 3 answers: {quiet}");
        for line in quiet.lines().filter(|l| l.starts_with("0 ")) {
            assert!(!line.starts_with("0 1 "), "doc 1 was deleted: {quiet}");
        }

        // Deleting a dead id is a clean error.
        assert!(run(&argv(&format!("delete {} 1", dir.display()))).is_err());
        let _ = fs::remove_dir_all(&dir);

        // Administrative commands refuse mistyped paths instead of
        // materializing a fresh live directory there.
        let typo = std::env::temp_dir().join("ustr_cli_live_typo");
        let _ = fs::remove_dir_all(&typo);
        for cmd in ["delete {} 0", "compact {}", "serve-live {} q.txt"] {
            let err = run(&argv(&cmd.replace("{}", &typo.display().to_string()))).unwrap_err();
            assert!(err.contains("not a live collection"), "{err}");
        }
        assert!(!typo.exists(), "no directory was created");
    }

    #[test]
    fn serve_net_then_client_matches_serve_batch() {
        let docs = write_temp(
            "ustr_cli_net_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\nA:.5,B:.5 | B | C\n",
        );
        let queries = write_temp(
            "ustr_cli_net_q.txt",
            "AB 0.3\ntop AB 2\nlist AB 0.3\napprox AB 0.3\nZZ 0.5\n",
        );
        let port_file = std::env::temp_dir().join("ustr_cli_net_port");
        let _ = fs::remove_file(&port_file);
        let serve_argv = format!(
            "serve-net {docs} --tau-min 0.05 --max-conns 1 --port-file {} --quiet",
            port_file.display()
        );
        let server = std::thread::spawn(move || run(&argv(&serve_argv)));
        // The port file appears once the listener is bound.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(addr) = fs::read_to_string(&port_file) {
                if addr.trim().contains(':') {
                    break addr.trim().to_string();
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let remote = run(&argv(&format!("client {addr} {queries} --quiet"))).unwrap();
        server.join().unwrap().unwrap();
        let local = run(&argv(&format!(
            "serve-batch {docs} {queries} --tau-min 0.05 --quiet"
        )))
        .unwrap();
        assert_eq!(remote, local, "TCP rows equal in-process rows");

        // The verbose client header names the server.
        let _ = fs::remove_file(&port_file);
        let err = run(&argv(&format!("client 127.0.0.1:1 {queries}"))).unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "{err}");

        // Snapshot sources reject --tau-min/--epsilon instead of silently
        // ignoring them, exactly like serve-batch.
        let coll = std::env::temp_dir().join("ustr_cli_net_flags.coll");
        run(&argv(&format!(
            "build-collection {docs} --out {} --tau-min 0.05",
            coll.display()
        )))
        .unwrap();
        let err = run(&argv(&format!(
            "serve-net {} --tau-min 0.2 --max-conns 1",
            coll.display()
        )))
        .unwrap_err();
        assert!(err.contains("--tau-min"), "{err}");
        let err = run(&argv(&format!(
            "serve-net {} --epsilon 0.1 --max-conns 1",
            coll.display()
        )))
        .unwrap_err();
        assert!(err.contains("--epsilon"), "{err}");
        let _ = fs::remove_file(&coll);
    }

    #[test]
    fn resilience_flags_work_end_to_end() {
        let docs = write_temp("ustr_cli_resil_docs.ustr", "A:.9,B:.1 | B | C\nC | C | C\n");
        let queries = write_temp("ustr_cli_resil_q.txt", "AB 0.3\ntop AB 2\n");
        let port_file = std::env::temp_dir().join("ustr_cli_resil_port");
        let _ = fs::remove_file(&port_file);
        let serve_argv = format!(
            "serve-net {docs} --tau-min 0.05 --max-conns 1 --idle-timeout-s 30 \
             --error-budget 8 --port-file {} --quiet",
            port_file.display()
        );
        let server = std::thread::spawn(move || run(&argv(&serve_argv)));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(addr) = fs::read_to_string(&port_file) {
                if addr.trim().contains(':') {
                    break addr.trim().to_string();
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let remote = run(&argv(&format!(
            "client {addr} {queries} --retries 2 --timeout-ms 5000 --quiet"
        )))
        .unwrap();
        server.join().unwrap().unwrap();
        let local = run(&argv(&format!(
            "serve-batch {docs} {queries} --tau-min 0.05 --quiet"
        )))
        .unwrap();
        assert_eq!(remote, local, "retried rows equal in-process rows");
        let _ = fs::remove_file(&port_file);

        // --retries rides the untraced path only.
        let err = run(&argv(&format!(
            "client 127.0.0.1:1 {queries} --trace --retries 1"
        )))
        .unwrap_err();
        assert!(err.contains("--retries"), "{err}");
    }

    #[test]
    fn stats_live_scrapes_a_running_server() {
        let docs = write_temp(
            "ustr_cli_statslive_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\n",
        );
        let queries = write_temp("ustr_cli_statslive_q.txt", "AB 0.3\n");
        let port_file = std::env::temp_dir().join("ustr_cli_statslive_port");
        let _ = fs::remove_file(&port_file);
        // Two connections: the query client, then the stats scrape.
        let serve_argv = format!(
            "serve-net {docs} --tau-min 0.05 --max-conns 2 --port-file {} --quiet",
            port_file.display()
        );
        let server = std::thread::spawn(move || run(&argv(&serve_argv)));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(addr) = fs::read_to_string(&port_file) {
                if addr.trim().contains(':') {
                    break addr.trim().to_string();
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        run(&argv(&format!("client {addr} {queries} --quiet"))).unwrap();
        let stats = run(&argv(&format!("stats --live {addr}"))).unwrap();
        assert!(stats.contains("ustr_net_requests 1"), "{stats}");
        assert!(stats.contains("ustr_service_requests 1"), "{stats}");
        assert!(
            stats.contains("ustr_net_rtt_us_threshold_count 1"),
            "{stats}"
        );
        server.join().unwrap().unwrap();
        let _ = fs::remove_file(&port_file);
    }

    #[test]
    fn trace_exports_chrome_json_and_answers_match_untraced() {
        let docs = write_temp(
            "ustr_cli_trace_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\nA:.5,B:.5 | B | C\n",
        );
        let queries = write_temp("ustr_cli_trace_q.txt", "AB 0.3\ntop AB 2\nZZ 0.5\n");
        let json_path = std::env::temp_dir().join("ustr_cli_trace.json");
        let out = run(&argv(&format!(
            "trace {docs} {queries} --tau-min 0.05 --sample-rate 1.0 --out {}",
            json_path.display()
        )))
        .unwrap();
        assert!(out.contains("trace(s) kept"), "{out}");
        assert!(out.contains("request"), "span trees are printed: {out}");
        assert!(out.contains("segment_answer"), "{out}");
        let json = fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"name\": \"segment_answer\""), "{json}");
        assert!(json.contains("\"candidates\""), "{json}");

        // Tracing must not change a single answer byte: quiet rows at 100%
        // sampling equal the untraced serve-batch rows.
        let traced_rows = run(&argv(&format!(
            "trace {docs} {queries} --tau-min 0.05 --out {} --quiet",
            json_path.display()
        )))
        .unwrap();
        let untraced_rows = run(&argv(&format!(
            "serve-batch {docs} {queries} --tau-min 0.05 --quiet"
        )))
        .unwrap();
        assert_eq!(traced_rows, untraced_rows, "tracing changed an answer");

        // Rate 0 keeps nothing but still writes a valid empty document.
        let out = run(&argv(&format!(
            "trace {docs} {queries} --tau-min 0.05 --sample-rate 0.0 --out {}",
            json_path.display()
        )))
        .unwrap();
        assert!(out.contains("0 trace(s) kept"), "{out}");
        assert!(fs::read_to_string(&json_path)
            .unwrap()
            .contains("\"traceEvents\""));
        // Out-of-range rates are a clean error.
        assert!(run(&argv(&format!(
            "trace {docs} {queries} --tau-min 0.05 --sample-rate 1.5"
        )))
        .is_err());
        let _ = fs::remove_file(&json_path);
    }

    #[test]
    fn client_trace_and_stats_json_against_a_sampled_server() {
        let docs = write_temp(
            "ustr_cli_ctrace_docs.ustr",
            "A:.9,B:.1 | B | C\nC | C | C\n",
        );
        let queries = write_temp("ustr_cli_ctrace_q.txt", "AB 0.3\n");
        let port_file = std::env::temp_dir().join("ustr_cli_ctrace_port");
        let _ = fs::remove_file(&port_file);
        // Two connections: the traced client, then the JSON stats scrape.
        let serve_argv = format!(
            "serve-net {docs} --tau-min 0.05 --trace-sample 1.0 --max-conns 2 \
             --port-file {} --quiet",
            port_file.display()
        );
        let server = std::thread::spawn(move || run(&argv(&serve_argv)));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(addr) = fs::read_to_string(&port_file) {
                if addr.trim().contains(':') {
                    break addr.trim().to_string();
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let out = run(&argv(&format!("client {addr} {queries} --trace"))).unwrap();
        assert!(out.contains("server stages:"), "{out}");
        assert!(out.contains("cache_lookup"), "{out}");
        assert!(out.contains("merge"), "{out}");
        let json = run(&argv(&format!("stats --live {addr} --json"))).unwrap();
        assert!(json.contains("\"net.requests\": 1"), "{json}");
        assert!(json.contains("\"service.requests\": 1"), "{json}");
        server.join().unwrap().unwrap();
        let _ = fs::remove_file(&port_file);

        // --json without --live is refused.
        let err = run(&argv(&format!("stats {docs} --json"))).unwrap_err();
        assert!(err.contains("--live"), "{err}");
    }

    #[test]
    fn serve_batch_slow_query_log_lists_worst_queries() {
        let docs = write_temp("ustr_cli_slowq_docs.ustr", "A:.9,B:.1 | B | C\nC | C | C\n");
        let queries = write_temp("ustr_cli_slowq_q.txt", "AB 0.3\ntop AB 2\n");
        // Threshold 0: every query qualifies as slow.
        let out = run(&argv(&format!(
            "serve-batch {docs} {queries} --tau-min 0.05 --slow-query-us 0"
        )))
        .unwrap();
        assert!(out.contains("slow queries (worst first):"), "{out}");
        assert!(out.contains("threshold"), "{out}");
        assert!(out.contains("top_k"), "{out}");
        // At the default threshold these microsecond queries stay silent.
        let out = run(&argv(&format!(
            "serve-batch {docs} {queries} --tau-min 0.05"
        )))
        .unwrap();
        assert!(!out.contains("slow queries"), "{out}");
    }

    #[test]
    fn malformed_query_lines_are_rejected() {
        let docs = write_temp("ustr_cli_badq_docs.ustr", "A | B\n");
        let bad = write_temp("ustr_cli_badq.txt", "top AB 3 extra\n");
        let err = run(&argv(&format!("serve-batch {docs} {bad}"))).unwrap_err();
        assert!(err.contains("search|top|list|approx"), "{err}");
        let bad_k = write_temp("ustr_cli_badk.txt", "top AB notanumber\n");
        assert!(run(&argv(&format!("serve-batch {docs} {bad_k}"))).is_err());
        // A two-token line is always the legacy threshold form — even when
        // the pattern collides with a mode keyword.
        let twotok = write_temp("ustr_cli_twotok.txt", "top 0.5\n");
        let out = run(&argv(&format!("serve-batch {docs} {twotok}"))).unwrap();
        assert!(out.contains("search \"top\" tau=0.5"), "{out}");
    }
}
