//! Substring-search microbenchmarks: the efficient index (§4.2/§5) against
//! the simple index (§4.1) and the online scanner (Li et al. style),
//! plus the short/long pattern regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ustr_baseline::{NaiveScanner, SimpleIndex};
use ustr_core::Index;
use ustr_workload::{generate_string, sample_patterns, DatasetConfig, PatternMode};

fn bench_query_paths(c: &mut Criterion) {
    let n = 20_000;
    let theta = 0.3;
    let tau_min = 0.1;
    let tau = 0.2;
    let s = generate_string(&DatasetConfig::new(n, theta, 1));
    let index = Index::build(&s, tau_min).unwrap();
    let simple = SimpleIndex::build(&s, tau_min).unwrap();

    let mut group = c.benchmark_group("substring_query");
    for m in [4usize, 8, 16, 64] {
        let patterns = sample_patterns(&s, m, 16, PatternMode::Probable, 7);
        group.bench_with_input(
            BenchmarkId::new("efficient_index", m),
            &patterns,
            |b, ps| {
                b.iter(|| {
                    for p in ps {
                        std::hint::black_box(index.query(p, tau).unwrap().len());
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("simple_index", m), &patterns, |b, ps| {
            b.iter(|| {
                for p in ps {
                    std::hint::black_box(simple.query(p, tau).unwrap().len());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("online_scan", m), &patterns, |b, ps| {
            b.iter(|| {
                for p in ps {
                    std::hint::black_box(NaiveScanner::find(&s, p, tau).len());
                }
            })
        });
    }
    group.finish();
}

fn bench_output_sensitivity(c: &mut Criterion) {
    // The §8 claim: short-pattern query time tracks m + occ, not n.
    let mut group = c.benchmark_group("substring_vs_n");
    group.sample_size(10);
    for n in [5_000usize, 20_000, 80_000] {
        let s = generate_string(&DatasetConfig::new(n, 0.2, 5));
        let index = Index::build(&s, 0.1).unwrap();
        let patterns = sample_patterns(&s, 8, 16, PatternMode::Probable, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &patterns, |b, ps| {
            b.iter(|| {
                for p in ps {
                    std::hint::black_box(index.query(p, 0.2).unwrap().len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_paths, bench_output_sensitivity);
criterion_main!(benches);
