//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! RMQ variants, per-level duplicate elimination, and the long-pattern
//! blocking levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ustr_core::{Index, IndexOptions};
use ustr_rmq::{BlockRmq, Direction, FischerHeunRmq, Rmq, SampledRmq, SparseTable};
use ustr_workload::{generate_string, sample_patterns, DatasetConfig, PatternMode};

fn bench_rmq_variants(c: &mut Criterion) {
    let n = 1 << 16;
    let mut state = 0xC0FFEEu64;
    let values: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000_000) as f64
        })
        .collect();
    let queries: Vec<(usize, usize)> = (0..256)
        .map(|i| {
            let a = (i * 7919) % n;
            let b = (i * 104729) % n;
            (a.min(b), a.max(b))
        })
        .collect();

    let sparse = SparseTable::new(&values, Direction::Max);
    let block = BlockRmq::new(&values, Direction::Max);
    let at = |i: usize| values[i];
    let sampled = SampledRmq::new(n, Direction::Max, &at);
    let fischer_heun = FischerHeunRmq::new(n, Direction::Max, &at);

    let mut group = c.benchmark_group("rmq_query");
    group.bench_function("sparse_table", |b| {
        b.iter(|| {
            for &(l, r) in &queries {
                std::hint::black_box(sparse.query(l, r));
            }
        })
    });
    group.bench_function("block_rmq", |b| {
        b.iter(|| {
            for &(l, r) in &queries {
                std::hint::black_box(block.query(l, r));
            }
        })
    });
    group.bench_function("sampled_rmq", |b| {
        b.iter(|| {
            for &(l, r) in &queries {
                std::hint::black_box(sampled.query_with(l, r, &at));
            }
        })
    });
    group.bench_function("fischer_heun", |b| {
        b.iter(|| {
            for &(l, r) in &queries {
                std::hint::black_box(fischer_heun.query_with(l, r, &at));
            }
        })
    });
    group.finish();
}

fn bench_dedup_ablation(c: &mut Criterion) {
    let s = generate_string(&DatasetConfig::new(20_000, 0.3, 8));
    let with_dedup = Index::build(&s, 0.1).unwrap();
    let without = Index::build_with(
        &s,
        0.1,
        &IndexOptions {
            disable_dedup: true,
            ..Default::default()
        },
    )
    .unwrap();
    let patterns = sample_patterns(&s, 4, 16, PatternMode::Probable, 12);

    let mut group = c.benchmark_group("dedup_ablation");
    group.bench_function("with_dedup", |b| {
        b.iter(|| {
            for p in &patterns {
                std::hint::black_box(with_dedup.query(p, 0.15).unwrap().len());
            }
        })
    });
    group.bench_function("without_dedup", |b| {
        b.iter(|| {
            for p in &patterns {
                std::hint::black_box(without.query(p, 0.15).unwrap().len());
            }
        })
    });
    group.finish();
}

fn bench_long_level_ablation(c: &mut Criterion) {
    let s = generate_string(&DatasetConfig::new(20_000, 0.15, 16));
    let with_levels = Index::build(&s, 0.1).unwrap();
    let without = Index::build_with(
        &s,
        0.1,
        &IndexOptions {
            disable_long_levels: true,
            ..Default::default()
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("long_pattern_blocking");
    for m in [32usize, 64] {
        let patterns = sample_patterns(&s, m, 8, PatternMode::Probable, 14);
        group.bench_with_input(
            BenchmarkId::new("blocking_levels", m),
            &patterns,
            |b, ps| {
                b.iter(|| {
                    for p in ps {
                        std::hint::black_box(with_levels.query(p, 0.1).unwrap().len());
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("range_scan", m), &patterns, |b, ps| {
            b.iter(|| {
                for p in ps {
                    std::hint::black_box(without.query(p, 0.1).unwrap().len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rmq_variants,
    bench_dedup_ablation,
    bench_long_level_ablation
);
criterion_main!(benches);
