//! Approximate-index microbenchmarks (§7): query latency and link-count
//! scaling against ε, compared with the exact index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ustr_core::{ApproxIndex, Index};
use ustr_workload::{generate_string, sample_patterns, DatasetConfig, PatternMode};

fn bench_approx_vs_exact(c: &mut Criterion) {
    let s = generate_string(&DatasetConfig::new(20_000, 0.3, 4));
    let exact = Index::build(&s, 0.1).unwrap();
    let approx = ApproxIndex::build(&s, 0.1, 0.05).unwrap();
    let patterns = sample_patterns(&s, 6, 16, PatternMode::Probable, 6);

    let mut group = c.benchmark_group("approx_query");
    group.bench_function("exact_index", |b| {
        b.iter(|| {
            for p in &patterns {
                std::hint::black_box(exact.query(p, 0.25).unwrap().len());
            }
        })
    });
    group.bench_function("approx_index_eps_0.05", |b| {
        b.iter(|| {
            for p in &patterns {
                std::hint::black_box(approx.query(p, 0.25).unwrap().len());
            }
        })
    });
    group.finish();
}

fn bench_epsilon_scaling(c: &mut Criterion) {
    let s = generate_string(&DatasetConfig::new(10_000, 0.3, 4));
    let mut group = c.benchmark_group("approx_build_eps");
    group.sample_size(10);
    for eps in [0.2f64, 0.1, 0.05, 0.02] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &e| {
            b.iter(|| {
                let idx = ApproxIndex::build(&s, 0.1, e).unwrap();
                std::hint::black_box(idx.num_links())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approx_vs_exact, bench_epsilon_scaling);
criterion_main!(benches);
