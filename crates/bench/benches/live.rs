//! Live-serving benchmark: ingest throughput, query latency as the
//! collection moves through its lifecycle (memtable-only → sealed
//! segments), and compaction duration. Emits machine-readable
//! `BENCH_live.json` for CI artifact upload.
//!
//! This is a custom `harness = false` main (not criterion): the interesting
//! numbers here are lifecycle-stage medians and one-shot maintenance
//! durations, which we time directly and serialize ourselves.

use std::path::PathBuf;
use std::time::Instant;

use ustr_live::{LiveConfig, LiveService};
use ustr_service::QueryRequest;
use ustr_uncertain::UncertainString;
use ustr_workload::{generate_collection, DatasetConfig};

const QUERY_ITERS: usize = 30;

fn config(seal_threshold: usize) -> LiveConfig {
    LiveConfig {
        threads: 2,
        cache_capacity: 0, // measure the indexes, not the cache
        tau_min: 0.1,
        epsilon: None,
        seal_threshold,
        compact_min_segments: 0,
    }
}

fn batch() -> Vec<QueryRequest> {
    let mut out = Vec::new();
    for pattern in [&b"ab"[..], b"ba", b"aab"] {
        out.push(QueryRequest::Threshold {
            pattern: pattern.to_vec(),
            tau: 0.3,
        });
        out.push(QueryRequest::TopK {
            pattern: pattern.to_vec(),
            k: 5,
        });
        out.push(QueryRequest::Listing {
            pattern: pattern.to_vec(),
            tau: 0.2,
        });
        out.push(QueryRequest::Approx {
            pattern: pattern.to_vec(),
            tau: 0.3,
        });
    }
    out
}

/// Median over `QUERY_ITERS` evaluations of the mixed-mode batch, in µs.
fn query_p50_us(live: &LiveService) -> f64 {
    let requests = batch();
    let mut times: Vec<f64> = (0..QUERY_ITERS)
        .map(|_| {
            let t0 = Instant::now();
            let results = live.query_requests(&requests);
            assert!(results.iter().all(|r| r.is_ok()), "bench queries answer");
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ingests `docs`, returning (dir-keeping service, ingest seconds).
fn ingest(dir: &PathBuf, docs: &[UncertainString], seal_threshold: usize) -> (LiveService, f64) {
    let live = LiveService::open(dir, config(seal_threshold)).unwrap();
    let t0 = Instant::now();
    for d in docs {
        live.insert(d.clone()).unwrap();
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    live.wait_idle().unwrap();
    (live, ingest_secs)
}

fn main() {
    // Ignore harness flags (`cargo bench` passes --bench).
    let docs = generate_collection(&DatasetConfig::new(4_000, 0.25, 41));
    let num_docs = docs.len();

    // Stage 1 — memtable only: every document is scan-served; queries must
    // answer without a single index having been built.
    let dir = fresh_dir("ustr_bench_live_memtable");
    let (live, ingest_secs) = ingest(&dir, &docs, 0);
    assert_eq!(
        live.num_segments(),
        0,
        "memtable stage must not build indexes"
    );
    assert_eq!(live.memtable_len(), num_docs);
    let p50_memtable = query_p50_us(&live);
    let ingest_docs_per_sec = num_docs as f64 / ingest_secs;

    // Stage 2 — one sealed segment: flush everything, queries now run
    // against built indexes.
    let t0 = Instant::now();
    live.flush().unwrap();
    let seal_secs = t0.elapsed().as_secs_f64();
    assert_eq!(live.num_segments(), 1);
    let p50_one_segment = query_p50_us(&live);
    drop(live);
    let _ = std::fs::remove_dir_all(&dir);

    // Stage 3 — four sealed segments (the fan-out cost of an unfused
    // lifecycle), then compaction back to one.
    let dir = fresh_dir("ustr_bench_live_segments");
    let (live, _) = ingest(&dir, &docs, num_docs.div_ceil(4));
    live.flush().unwrap();
    let segments_before = live.num_segments();
    assert!(segments_before >= 4, "expected >= 4 segments");
    let p50_four_segments = query_p50_us(&live);
    let t0 = Instant::now();
    live.compact().unwrap();
    live.wait_idle().unwrap();
    let compact_secs = t0.elapsed().as_secs_f64();
    assert_eq!(live.num_segments(), 1, "compaction fused the segments");
    let p50_after_compaction = query_p50_us(&live);
    drop(live);
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"num_docs\": {num_docs},\n  \
         \"ingest_docs_per_sec\": {ingest_docs_per_sec:.1},\n  \
         \"seal_secs\": {seal_secs:.4},\n  \
         \"compact_secs\": {compact_secs:.4},\n  \
         \"segments_before_compaction\": {segments_before},\n  \
         \"query_p50_us\": {{\n    \
         \"memtable_only\": {p50_memtable:.1},\n    \
         \"one_segment\": {p50_one_segment:.1},\n    \
         \"four_segments\": {p50_four_segments:.1},\n    \
         \"after_compaction\": {p50_after_compaction:.1}\n  }}\n}}\n"
    );
    std::fs::write("BENCH_live.json", &json).unwrap();
    println!("{json}");
    println!(
        "wrote BENCH_live.json to {}",
        std::env::current_dir().unwrap().display()
    );
}
