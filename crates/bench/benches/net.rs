//! Network serving benchmark: a real `ustr-net` server plus a
//! multi-connection load generator. Emits machine-readable `BENCH_net.json`
//! (total pipelined throughput and per-mode round-trip p50/p99, at 1, 8,
//! 64, and 256 concurrent connections) for CI artifact upload and the
//! `bench-gate` regression check — the high-connection sections price the
//! event loop's readiness scaling, and their `throughput_rps` keys are
//! lower-bounded by the gate. A live exposition endpoint runs
//! alongside the query port; its post-load scrape lands in
//! `BENCH_metrics.json` — the full telemetry picture (server traffic,
//! engine stages, kernel totals) of exactly this run, preceded by a
//! `tracing` section measuring what query tracing costs the serving path:
//! threshold round-trip p50 with the backend tracer off, at 1%, and at
//! 100% sampling (the p50 keys are gated by `bench-gate`). The traces the
//! 100% phase records are exported to `traces.json` as a Chrome
//! `trace_event` artifact.
//!
//! Like the `live` bench this is a custom `harness = false` main: the
//! interesting numbers are latency percentiles under concurrency, which we
//! time directly and serialize ourselves. The result cache is disabled so
//! the wire + dispatch + index path is what gets measured.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use ustr_net::{NetClient, NetServer, ServerConfig};
use ustr_service::{QueryRequest, QueryService, ServiceConfig};
use ustr_workload::{generate_collection, DatasetConfig};

/// Round trips per (connection, mode) in the latency phase.
const LATENCY_ITERS: usize = 20;
/// Pipelined batches per connection in the throughput phase.
const THROUGHPUT_BATCHES: usize = 8;
/// Requests per pipelined batch.
const BATCH_SIZE: usize = 16;
/// Connection counts swept. 256 is the event loop's scaling point: far
/// more connections than query (or I/O) threads, all pipelining at once.
const CONN_COUNTS: [usize; 4] = [1, 8, 64, 256];

/// `(mode key, one representative request)` for the latency phase.
fn modes() -> Vec<(&'static str, QueryRequest)> {
    vec![
        (
            "threshold",
            QueryRequest::Threshold {
                pattern: b"ab".to_vec(),
                tau: 0.3,
            },
        ),
        (
            "topk",
            QueryRequest::TopK {
                pattern: b"ab".to_vec(),
                k: 5,
            },
        ),
        (
            "listing",
            QueryRequest::Listing {
                pattern: b"ba".to_vec(),
                tau: 0.2,
            },
        ),
        (
            "approx",
            QueryRequest::Approx {
                pattern: b"ab".to_vec(),
                tau: 0.3,
            },
        ),
    ]
}

/// The mixed-mode batch the throughput phase pipelines.
fn throughput_batch() -> Vec<QueryRequest> {
    let modes = modes();
    (0..BATCH_SIZE)
        .map(|i| modes[i % modes.len()].1.clone())
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct ConnStats {
    /// Per-mode round-trip latencies in µs.
    latencies: Vec<Vec<f64>>,
    /// Requests answered in the throughput phase.
    answered: usize,
}

/// One load-generator connection: sequential round trips per mode, then
/// pipelined mixed-mode bursts.
fn drive_connection(addr: SocketAddr, seed: usize) -> ConnStats {
    let mut client = NetClient::connect(addr).expect("connect");
    let modes = modes();
    let mut latencies = vec![Vec::with_capacity(LATENCY_ITERS); modes.len()];
    // Stagger the mode order per connection so all 64 connections do not
    // hammer the same pattern in lockstep.
    for k in 0..modes.len() {
        let (_, request) = &modes[(seed + k) % modes.len()];
        let slot = (seed + k) % modes.len();
        for _ in 0..LATENCY_ITERS {
            let t0 = Instant::now();
            let answers = client
                .query_requests(std::slice::from_ref(request))
                .expect("round trip");
            assert!(answers[0].is_ok(), "bench queries answer");
            latencies[slot].push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    let batch = throughput_batch();
    let mut answered = 0;
    for _ in 0..THROUGHPUT_BATCHES {
        let answers = client.query_requests(&batch).expect("pipelined batch");
        assert!(answers.iter().all(|a| a.is_ok()));
        answered += answers.len();
    }
    let _ = client.goodbye();
    ConnStats {
        latencies,
        answered,
    }
}

fn main() {
    // Ignore harness flags (`cargo bench` passes --bench).
    let docs = generate_collection(&DatasetConfig::new(2_000, 0.25, 43));
    let num_docs = docs.len();
    let service = Arc::new(
        QueryService::build(
            &docs,
            0.1,
            ServiceConfig {
                threads: 0,
                shards: 0,
                cache_capacity: 0, // measure the serving path, not the cache
                epsilon: Some(0.05),
            },
        )
        .expect("service build"),
    );
    let server = NetServer::serve(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn ustr_net::QueryBackend>,
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Exposition endpoint scraped while (and after) the load runs, exactly
    // as `ustr serve-net --metrics-addr` wires it: process-global registry,
    // kernel totals, and the server's instance metrics in one snapshot.
    let server_source = server.metrics_source();
    let snapshot_source: ustr_obs::SnapshotFn = Arc::new(move || {
        let mut snap = ustr_obs::global().snapshot();
        let k = ustr_uncertain::kstats::kernel_totals();
        snap.counters
            .insert("kernel.candidates".into(), k.candidates);
        snap.counters.insert("kernel.verified".into(), k.verified);
        snap.counters.insert("kernel.kernel_ns".into(), k.kernel_ns);
        snap.merge(&server_source());
        snap
    });
    let metrics = ustr_obs::MetricsServer::serve_with("127.0.0.1:0", Arc::clone(&snapshot_source))
        .expect("bind metrics endpoint");

    let mode_keys: Vec<&str> = modes().iter().map(|&(k, _)| k).collect();
    let mut sections = Vec::new();
    for &conns in &CONN_COUNTS {
        let t0 = Instant::now();
        let stats: Vec<ConnStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..conns)
                .map(|seed| scope.spawn(move || drive_connection(addr, seed)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        let round_trips: usize = conns * LATENCY_ITERS * mode_keys.len();
        let answered: usize = stats.iter().map(|s| s.answered).sum::<usize>() + round_trips;
        let throughput = answered as f64 / wall;

        let mut mode_json = Vec::new();
        for (m, key) in mode_keys.iter().enumerate() {
            let mut all: Vec<f64> = stats.iter().flat_map(|s| s.latencies[m].clone()).collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            mode_json.push(format!(
                "      \"{key}\": {{ \"p50_us\": {:.1}, \"p99_us\": {:.1} }}",
                percentile(&all, 0.50),
                percentile(&all, 0.99)
            ));
        }
        sections.push(format!(
            "  \"conns_{conns}\": {{\n    \"throughput_rps\": {throughput:.1},\n    \
             \"requests\": {answered},\n    \"modes\": {{\n{}\n    }}\n  }}",
            mode_json.join(",\n")
        ));
        println!(
            "{conns:>3} connection(s): {answered} request(s) in {wall:.3}s \
             ({throughput:.0} req/s)"
        );
    }
    // Tracing overhead phase: sequential threshold round trips on one
    // connection with the backend tracer off, at 1%, and at 100% rate
    // sampling. Plain Request frames throughout — this prices exactly what
    // `serve-net --trace-sample` costs ordinary traffic (root spans are
    // born in the engine; the sampler decides per trace), not the traced
    // wire frames.
    const TRACE_WARMUP: usize = 20;
    const TRACE_ITERS: usize = 200;
    let mut trace_p50s = Vec::new();
    for (label, permyriad) in [
        ("off", 0u32),
        ("sample_1pct", 100),
        ("sample_100pct", 10_000),
    ] {
        service.tracer().set_sample_permyriad(permyriad);
        let mut client = NetClient::connect(addr).expect("connect");
        let request = QueryRequest::Threshold {
            pattern: b"ab".to_vec(),
            tau: 0.3,
        };
        let mut lat = Vec::with_capacity(TRACE_ITERS);
        for i in 0..TRACE_WARMUP + TRACE_ITERS {
            let t0 = Instant::now();
            let answers = client
                .query_requests(std::slice::from_ref(&request))
                .expect("round trip");
            assert!(answers[0].is_ok(), "tracing-phase queries answer");
            if i >= TRACE_WARMUP {
                lat.push(t0.elapsed().as_secs_f64() * 1e6);
            }
        }
        let _ = client.goodbye();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = percentile(&lat, 0.50);
        println!("tracing {label}: threshold RTT p50 {p50:.1}us");
        trace_p50s.push(p50);
    }
    service.tracer().set_sample_permyriad(0);

    // The 100% phase filled the trace ring: export it as the Chrome
    // trace_event artifact CI uploads.
    let traces = server.traces_json();
    assert!(
        traces.contains("\"name\": \"segment_answer\""),
        "100% sampling records the full request anatomy: {traces}"
    );
    std::fs::write("traces.json", &traces).unwrap();

    // Scrape the live endpoint over HTTP after the load (proving the
    // endpoint serves under and after traffic), then persist the same
    // snapshot as a deterministic JSON artifact, prefixed with the gated
    // tracing-overhead section.
    let scraped = ustr_obs::scrape(metrics.local_addr()).expect("scrape metrics endpoint");
    assert!(
        scraped.contains("ustr_net_requests"),
        "scrape carries server counters: {scraped}"
    );
    assert!(
        scraped.contains("ustr_service_requests"),
        "scrape carries engine counters: {scraped}"
    );
    let metrics_doc = format!(
        "{{\n  \"tracing\": {{\n    \"threshold_rtt_p50_us\": {{ \"off\": {:.1}, \
         \"sample_1pct\": {:.1}, \"sample_100pct\": {:.1} }},\n    \
         \"overhead_100pct_vs_off_us\": {:.1}\n  }},\n  \"snapshot\": {}}}\n",
        trace_p50s[0],
        trace_p50s[1],
        trace_p50s[2],
        trace_p50s[2] - trace_p50s[0],
        snapshot_source().render_json()
    );
    std::fs::write("BENCH_metrics.json", &metrics_doc).unwrap();
    metrics.shutdown();
    server.shutdown();

    let json = format!(
        "{{\n  \"num_docs\": {num_docs},\n{}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write("BENCH_net.json", &json).unwrap();
    println!("{json}");
    println!(
        "wrote BENCH_net.json, BENCH_metrics.json, and traces.json to {}",
        std::env::current_dir().unwrap().display()
    );
}
