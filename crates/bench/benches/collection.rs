//! Collection persistence benchmarks: loading a served collection from the
//! deprecated one-file-per-document directory layout versus the single-file
//! collection snapshot, plus the cost of writing each. The single file wins
//! on open/stat overhead (one file instead of N) and is the only format
//! carrying approx indexes; this bench keeps that claim measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ustr_service::{QueryRequest, QueryService, ServiceConfig};
use ustr_workload::{generate_collection, DatasetConfig};

fn no_cache(threads: usize) -> ServiceConfig {
    ServiceConfig {
        threads,
        shards: threads,
        cache_capacity: 0,
        epsilon: None,
    }
}

fn bench_directory_vs_collection_load(c: &mut Criterion) {
    let docs = generate_collection(&DatasetConfig::new(6_000, 0.25, 17));
    let service = QueryService::build(&docs, 0.1, no_cache(2)).unwrap();

    let base = std::env::temp_dir().join("ustr_bench_collection");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let dir = base.join("per_doc");
    let coll = base.join("all.coll");
    service.save_dir(&dir).unwrap();
    service.save_collection(&coll).unwrap();

    let mut group = c.benchmark_group("collection_load");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("directory"), &dir, |b, dir| {
        b.iter(|| {
            let s = QueryService::load_dir(dir, no_cache(2)).unwrap();
            std::hint::black_box(s.num_docs())
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("collection"),
        &coll,
        |b, coll| {
            b.iter(|| {
                let s = QueryService::load_collection(coll, no_cache(2)).unwrap();
                std::hint::black_box(s.num_docs())
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("collection_save"),
        &service,
        |b, service| {
            let out = base.join("resave.coll");
            b.iter(|| {
                service.save_collection(&out).unwrap();
                std::hint::black_box(std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0))
            })
        },
    );
    group.finish();

    // A loaded collection must serve a mixed-mode batch — keep the whole
    // pipeline (load → typed dispatch) exercised under the bench harness so
    // format regressions fail the CI smoke run loudly.
    let loaded = QueryService::load_collection(&coll, no_cache(4)).unwrap();
    let batch = vec![
        QueryRequest::Threshold {
            pattern: b"aa".to_vec(),
            tau: 0.3,
        },
        QueryRequest::TopK {
            pattern: b"aa".to_vec(),
            k: 5,
        },
        QueryRequest::Listing {
            pattern: b"a".to_vec(),
            tau: 0.5,
        },
        QueryRequest::Approx {
            pattern: b"aa".to_vec(),
            tau: 0.3,
        },
    ];
    let parallel = loaded.query_requests(&batch);
    let sequential = loaded.query_requests_sequential(&batch);
    for (q, (a, b)) in parallel.iter().zip(sequential.iter()).enumerate() {
        assert_eq!(
            a.as_ref().unwrap(),
            b.as_ref().unwrap(),
            "request {q}: parallel != sequential after collection load"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench_directory_vs_collection_load);
criterion_main!(benches);
