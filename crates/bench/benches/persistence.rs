//! Persistence and serving benchmarks: snapshot encode/decode against a full
//! rebuild (the economics that motivate `ustr-store`), and batch serving
//! throughput through the `ustr-service` thread pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ustr_core::Index;
use ustr_service::{BatchQuery, QueryService, ServiceConfig};
use ustr_store::Snapshot;
use ustr_workload::{
    generate_collection, generate_string, sample_patterns, DatasetConfig, PatternMode,
};

fn bench_snapshot_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_vs_rebuild");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let s = generate_string(&DatasetConfig::new(n, 0.3, 11));
        let index = Index::build(&s, 0.1).unwrap();
        let mut bytes = Vec::new();
        index.write_snapshot(&mut bytes).unwrap();

        group.bench_with_input(BenchmarkId::new("rebuild", n), &s, |b, s| {
            b.iter(|| std::hint::black_box(Index::build(s, 0.1).unwrap().stats().transformed_len))
        });
        group.bench_with_input(BenchmarkId::new("snapshot_load", n), &bytes, |b, bytes| {
            b.iter(|| {
                std::hint::black_box(
                    Index::read_snapshot(&bytes[..])
                        .unwrap()
                        .stats()
                        .transformed_len,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("snapshot_write", n), &index, |b, index| {
            b.iter(|| {
                let mut out = Vec::new();
                index.write_snapshot(&mut out).unwrap();
                std::hint::black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_service_batch(c: &mut Criterion) {
    let docs = generate_collection(&DatasetConfig::new(20_000, 0.25, 3));
    let concat = ustr_uncertain::UncertainString::new(
        docs.iter()
            .flat_map(|d| d.positions().iter().cloned())
            .collect(),
    );
    let batch: Vec<BatchQuery> = sample_patterns(&concat, 6, 48, PatternMode::Probable, 9)
        .into_iter()
        .map(|p| (p, 0.2))
        .collect();

    let mut group = c.benchmark_group("service_batch");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let service = QueryService::build(
            &docs,
            0.1,
            ServiceConfig {
                threads,
                shards: threads,
                cache_capacity: 0, // measure computation, not the cache
                epsilon: None,
            },
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &batch, |b, batch| {
            b.iter(|| {
                let results = service.query_batch(batch);
                std::hint::black_box(results.iter().filter(|r| r.is_ok()).count())
            })
        });
    }

    // The cache short-circuits repeated batches entirely.
    let cached = QueryService::build(
        &docs,
        0.1,
        ServiceConfig {
            threads: 4,
            shards: 4,
            cache_capacity: 4096,
            epsilon: None,
        },
    )
    .unwrap();
    let _ = cached.query_batch(&batch); // warm
    group.bench_with_input(
        BenchmarkId::from_parameter("4+cache"),
        &batch,
        |b, batch| {
            b.iter(|| {
                let results = cached.query_batch(batch);
                std::hint::black_box(results.len())
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_snapshot_vs_rebuild, bench_service_batch);
criterion_main!(benches);
