//! String-listing microbenchmarks (§6): output-sensitive listing against
//! the scan-every-document baseline, and the relevance-metric variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ustr_baseline::NaiveScanner;
use ustr_core::{ListingIndex, RelMetric};
use ustr_uncertain::UncertainString;
use ustr_workload::{generate_collection, sample_patterns, DatasetConfig, PatternMode};

fn setup(n: usize, theta: f64) -> (Vec<UncertainString>, ListingIndex, Vec<Vec<u8>>) {
    let docs = generate_collection(&DatasetConfig::new(n, theta, 2));
    let index = ListingIndex::build(&docs, 0.1).unwrap();
    let concat = UncertainString::new(
        docs.iter()
            .flat_map(|d| d.positions().iter().cloned())
            .collect(),
    );
    let patterns = sample_patterns(&concat, 6, 16, PatternMode::Probable, 9);
    (docs, index, patterns)
}

fn bench_listing_vs_naive(c: &mut Criterion) {
    let (docs, index, patterns) = setup(20_000, 0.3);
    let mut group = c.benchmark_group("listing_query");
    group.bench_function("listing_index", |b| {
        b.iter(|| {
            for p in &patterns {
                std::hint::black_box(index.query(p, 0.2).unwrap().len());
            }
        })
    });
    group.bench_function("scan_all_documents", |b| {
        b.iter(|| {
            for p in &patterns {
                std::hint::black_box(NaiveScanner::listing(&docs, p, 0.2).len());
            }
        })
    });
    group.finish();
}

fn bench_relevance_metrics(c: &mut Criterion) {
    let (_docs, index, patterns) = setup(10_000, 0.3);
    let mut group = c.benchmark_group("listing_metrics");
    for (name, metric) in [
        ("rel_max", RelMetric::Max),
        ("rel_or", RelMetric::Or),
        ("rel_independent_or", RelMetric::IndependentOr),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &metric, |b, &m| {
            b.iter(|| {
                for p in &patterns {
                    std::hint::black_box(index.query_with_metric(p, 0.15, m).unwrap().len());
                }
            })
        });
    }
    group.finish();
}

fn bench_listing_vs_collection_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("listing_vs_n");
    group.sample_size(10);
    for n in [5_000usize, 20_000, 80_000] {
        let (_docs, index, patterns) = setup(n, 0.2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &patterns, |b, ps| {
            b.iter(|| {
                for p in ps {
                    std::hint::black_box(index.query(p, 0.2).unwrap().len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_listing_vs_naive,
    bench_relevance_metrics,
    bench_listing_vs_collection_size
);
criterion_main!(benches);
