//! Verification-bound query latency: the flat-plane `MatchKernel` vs the
//! naive per-candidate walk, per query mode, on the two real-alphabet
//! workloads (IUPAC DNA σ ≤ 16, §8.1 protein σ ≈ 20), over both executor
//! strategies (built index, plane-backed scan). Emits machine-readable
//! `BENCH_query.json` for CI artifact upload and the perf gate.
//!
//! Custom `harness = false` main (not criterion): the gated numbers are
//! batch medians we time and serialize ourselves, like the live/net
//! benches. Keys containing `p50` are gated against `BENCH_baseline/`;
//! the `naive_*` reference series (the pre-plane evaluation path) is
//! reported for the speedup bookkeeping but deliberately named without
//! `p50` so the gate tracks only the paths this workspace owns.

use std::hint::black_box;
use std::time::Instant;

use ustr_baseline::{NaiveScanner, ScanIndex};
use ustr_core::{Index, ListingIndex, QueryExecutor};
use ustr_uncertain::{ProbPlane, UncertainString, PROB_EPS};
use ustr_workload::{
    from_iupac, generate_collection, generate_string, sample_patterns, DatasetConfig, PatternMode,
};

const ITERS: usize = 30;
const TAU_MIN: f64 = 0.1;
const TAU: f64 = 0.2;
const TOP_K: usize = 10;

/// Median of `ITERS` evaluations of `f`, in microseconds.
fn p50_us(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Deterministic pseudo-random IUPAC sequence: ACGT body with ~8%
/// ambiguity codes (the real-FASTA shape the `ustr-workload` docs
/// describe). Plain LCG so the bench needs no RNG dependency.
fn iupac_sequence(n: usize, mut state: u64) -> Vec<u8> {
    let mut step = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..n)
        .map(|_| {
            let r = step();
            if r % 100 < 8 {
                b"RYSWKMBDHVN"[(r / 100) as usize % 11]
            } else {
                b"ACGT"[(r / 100) as usize % 4]
            }
        })
        .collect()
}

struct WorkloadReport {
    n: usize,
    sigma: usize,
    candidates: usize,
    naive_ns: f64,
    kernel_p50_ns: f64,
    threshold_naive_us: f64,
    threshold_built_us: f64,
    threshold_scanned_us: f64,
    topk_built_us: f64,
    topk_scanned_us: f64,
    listing_p50_us: f64,
}

impl WorkloadReport {
    fn to_json(&self) -> String {
        format!(
            "{{\n    \"n\": {},\n    \"sigma\": {},\n    \"verify\": {{\n      \
             \"candidates\": {},\n      \
             \"naive_ns_per_candidate\": {:.2},\n      \
             \"kernel_p50_ns_per_candidate\": {:.2},\n      \
             \"speedup_x\": {:.2}\n    }},\n    \
             \"threshold_naive_us\": {:.1},\n    \
             \"threshold_p50_us\": {{ \"built\": {:.1}, \"scanned\": {:.1} }},\n    \
             \"topk_p50_us\": {{ \"built\": {:.1}, \"scanned\": {:.1} }},\n    \
             \"listing_p50_us\": {:.1}\n  }}",
            self.n,
            self.sigma,
            self.candidates,
            self.naive_ns,
            self.kernel_p50_ns,
            self.naive_ns / self.kernel_p50_ns,
            self.threshold_naive_us,
            self.threshold_built_us,
            self.threshold_scanned_us,
            self.topk_built_us,
            self.topk_scanned_us,
            self.listing_p50_us,
        )
    }
}

/// Benches one workload end to end. `docs` is the same text split into a
/// collection for the listing mode.
fn bench_workload(name: &str, s: &UncertainString, docs: &[UncertainString]) -> WorkloadReport {
    let plane = ProbPlane::build(s);
    let patterns: Vec<Vec<u8>> = [6usize, 12]
        .into_iter()
        .flat_map(|m| sample_patterns(s, m, 20, PatternMode::Probable, 97))
        .collect();
    assert!(!patterns.is_empty(), "workload must yield patterns");

    // --- Verification-bound microbench over the candidate sets a query
    // actually verifies: the plane's presence prefilter enumerates the
    // starts whose first factors can be nonzero (what the RMQ report /
    // scan prefilter hands to verification), then naive and kernel
    // evaluate the *same* list. The assertion pass pins the bit-identity
    // contract on every candidate while it's at it.
    let candidate_lists: Vec<Vec<usize>> = patterns
        .iter()
        .map(|p| {
            plane.with_kernel(p, |kernel| {
                kernel.candidates(s.len() + 1 - p.len()).collect()
            })
        })
        .collect();
    let candidates: usize = candidate_lists.iter().map(Vec::len).sum();
    assert!(candidates > 0, "prefilter must leave candidates");
    let naive_ns = p50_us(|| {
        for (p, list) in patterns.iter().zip(&candidate_lists) {
            for &pos in list {
                black_box(s.log_match_probability(black_box(p), pos));
            }
        }
    }) * 1e3
        / candidates as f64;
    let kernel_p50_ns = p50_us(|| {
        for (p, list) in patterns.iter().zip(&candidate_lists) {
            plane.with_kernel(p, |kernel| {
                for &pos in list {
                    black_box(kernel.log_match(black_box(pos)));
                }
            });
        }
    }) * 1e3
        / candidates as f64;
    for (p, list) in patterns.iter().zip(&candidate_lists) {
        plane.with_kernel(p, |kernel| {
            for &pos in list {
                assert_eq!(
                    s.log_match_probability(p, pos).to_bits(),
                    kernel.log_match(pos).to_bits(),
                    "kernel must stay bit-identical"
                );
            }
        });
    }

    // --- Per-mode, built vs scanned executors.
    let index = Index::build(s, TAU_MIN).expect("index builds");
    let scan = ScanIndex::new(s.clone(), TAU_MIN).expect("scan wraps");
    let threshold_naive_us = p50_us(|| {
        for p in &patterns {
            let mut hits = NaiveScanner::find_with_probs(s, p, TAU);
            hits.retain(|&(_, pr)| pr >= TAU - PROB_EPS);
            black_box(hits);
        }
    });
    let threshold_built_us = p50_us(|| {
        for p in &patterns {
            black_box(index.query(p, TAU).unwrap());
        }
    });
    let threshold_scanned_us = p50_us(|| {
        for p in &patterns {
            black_box(scan.threshold_hits(p, TAU).unwrap());
        }
    });
    let topk_built_us = p50_us(|| {
        for p in &patterns {
            black_box(index.query_top_k(p, TOP_K).unwrap());
        }
    });
    let topk_scanned_us = p50_us(|| {
        for p in &patterns {
            black_box(scan.top_k_hits(p, TOP_K).unwrap());
        }
    });

    let listing = ListingIndex::build(docs, TAU_MIN).expect("listing builds");
    let listing_p50_us = p50_us(|| {
        for p in &patterns {
            black_box(listing.query(p, TAU).unwrap());
        }
    });

    let report = WorkloadReport {
        n: s.len(),
        sigma: plane.sigma(),
        candidates,
        naive_ns,
        kernel_p50_ns,
        threshold_naive_us,
        threshold_built_us,
        threshold_scanned_us,
        topk_built_us,
        topk_scanned_us,
        listing_p50_us,
    };
    println!(
        "{name}: n={} sigma={} verify {:.1}ns -> {:.1}ns/candidate ({:.2}x)",
        report.n,
        report.sigma,
        report.naive_ns,
        report.kernel_p50_ns,
        report.naive_ns / report.kernel_p50_ns
    );
    report
}

fn main() {
    // IUPAC DNA: tiny alphabet, long deterministic runs — the dense plane
    // plus the deterministic-window fast path.
    let iupac = from_iupac(&iupac_sequence(12_000, 0xD1CE)).expect("IUPAC parses");
    let iupac_docs: Vec<UncertainString> = iupac
        .positions()
        .chunks(40)
        .map(|c| UncertainString::new(c.to_vec()))
        .collect();
    let r_iupac = bench_workload("iupac", &iupac, &iupac_docs);

    // §8.1 protein neighbourhood pdfs: σ ≈ 20, θ = 0.25.
    let protein = generate_string(&DatasetConfig::new(8_000, 0.25, 41));
    let protein_docs = generate_collection(&DatasetConfig::new(8_000, 0.25, 41));
    let r_protein = bench_workload("protein", &protein, &protein_docs);

    let json = format!(
        "{{\n  \"iupac\": {},\n  \"protein\": {}\n}}\n",
        r_iupac.to_json(),
        r_protein.to_json()
    );
    std::fs::write("BENCH_query.json", &json).unwrap();
    println!("{json}");
    println!(
        "wrote BENCH_query.json to {}",
        std::env::current_dir().unwrap().display()
    );
}
