//! Construction-cost microbenchmarks (Figure 9): the maximal-factor
//! transform and full index builds across n, θ, and τmin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ustr_core::Index;
use ustr_suffix::{suffix_array, SuffixTree};
use ustr_uncertain::transform;
use ustr_workload::{generate_string, DatasetConfig};

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(10);
    for theta in [0.1f64, 0.3] {
        let s = generate_string(&DatasetConfig::new(20_000, theta, 3));
        group.bench_with_input(BenchmarkId::from_parameter(theta), &s, |b, s| {
            b.iter(|| std::hint::black_box(transform(s, 0.1).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_suffix_structures(c: &mut Criterion) {
    let s = generate_string(&DatasetConfig::new(20_000, 0.3, 3));
    let t = transform(&s, 0.1).unwrap();
    let text = t.special.chars().to_vec();
    let mut group = c.benchmark_group("suffix_construction");
    group.sample_size(10);
    group.bench_function("sa_is", |b| {
        b.iter(|| std::hint::black_box(suffix_array(&text).len()))
    });
    group.bench_function("suffix_tree", |b| {
        b.iter(|| std::hint::black_box(SuffixTree::build(text.clone()).num_nodes()))
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        for theta in [0.1f64, 0.3] {
            let s = generate_string(&DatasetConfig::new(n, theta, 3));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("n{n}_theta{theta}")),
                &s,
                |b, s| {
                    b.iter(|| {
                        std::hint::black_box(Index::build(s, 0.1).unwrap().stats().transformed_len)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_tau_min_build(c: &mut Criterion) {
    let s = generate_string(&DatasetConfig::new(10_000, 0.3, 3));
    let mut group = c.benchmark_group("index_build_tau_min");
    group.sample_size(10);
    for tau_min in [0.05f64, 0.1, 0.2] {
        group.bench_with_input(BenchmarkId::from_parameter(tau_min), &tau_min, |b, &t| {
            b.iter(|| std::hint::black_box(Index::build(&s, t).unwrap().stats().transformed_len))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transform,
    bench_suffix_structures,
    bench_index_build,
    bench_tau_min_build
);
criterion_main!(benches);
