//! The perf-regression gate: a dependency-free JSON reader and a latency
//! comparator over the machine-readable `BENCH_*.json` artifacts.
//!
//! CI checks current bench output against the snapshots committed under
//! `BENCH_baseline/` (see the `bench-gate` binary). Keys whose dotted
//! path contains `p50` (default 30% tolerance) or `p99` (looser, default
//! 50%) are gated from above; keys containing `rps` are gated from *below*
//! (default 50% headroom) so connection-scaling throughput cannot quietly
//! collapse. One-shot maintenance durations are reported but too
//! machine-dependent to fail a build on.

/// A parsed JSON value (the subset the bench artifacts use, which is all of
/// JSON minus exotic escapes).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string (supports the standard short escapes and `\uXXXX`).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(what))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.fail("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the artifacts are ASCII, but
                    // stay correct on arbitrary input).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.fail("invalid number"))
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing bytes after the JSON document"));
    }
    Ok(value)
}

/// Every numeric leaf as a `(dotted.path, value)` pair, in source order.
/// Array elements use their index as the path segment.
pub fn flatten_numbers(value: &Json) -> Vec<(String, f64)> {
    fn walk(prefix: &str, value: &Json, out: &mut Vec<(String, f64)>) {
        let join = |key: &str| {
            if prefix.is_empty() {
                key.to_string()
            } else {
                format!("{prefix}.{key}")
            }
        };
        match value {
            Json::Num(n) => out.push((prefix.to_string(), *n)),
            Json::Obj(fields) => {
                for (key, v) in fields {
                    walk(&join(key), v, out);
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    walk(&join(&i.to_string()), v, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk("", value, &mut out);
    out
}

/// One gated metric that got slower than the baseline allows.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Dotted path of the metric.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

/// The comparator's verdict for one artifact.
#[derive(Debug, Default)]
pub struct GateReport {
    /// `(key, baseline, current)` for every gated metric that passed.
    pub passed: Vec<(String, f64, f64)>,
    /// Gated metrics above `baseline × (1 + tolerance)`.
    pub regressions: Vec<Regression>,
    /// Gated baseline keys with no numeric counterpart in the current
    /// artifact (a renamed or vanished metric also fails the gate).
    pub missing: Vec<String>,
}

impl GateReport {
    /// `true` when nothing regressed and nothing went missing.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Which way a gated metric is allowed to drift: latencies regress by going
/// *up*, throughputs by going *down*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// Fail when `current > baseline × (1 + tolerance)` (latencies).
    Upper(f64),
    /// Fail when `current < baseline × (1 - tolerance)` (throughputs).
    Lower(f64),
}

impl Bound {
    /// The tolerance fraction, direction-agnostic (for reporting).
    pub fn tolerance(self) -> f64 {
        match self {
            Bound::Upper(t) | Bound::Lower(t) => t,
        }
    }

    fn violated(self, base: f64, now: f64) -> bool {
        match self {
            Bound::Upper(t) => now > base * (1.0 + t),
            Bound::Lower(t) => now < base * (1.0 - t),
        }
    }
}

/// Shared comparator: `bound_of` decides, per dotted path (lowercased),
/// whether a baseline key is gated, at what tolerance, and in which
/// direction.
fn compare_with(
    baseline: &Json,
    current: &Json,
    bound_of: impl Fn(&str) -> Option<Bound>,
) -> GateReport {
    let current: std::collections::HashMap<String, f64> =
        flatten_numbers(current).into_iter().collect();
    let mut report = GateReport::default();
    for (key, base) in flatten_numbers(baseline) {
        let Some(bound) = bound_of(&key.to_ascii_lowercase()) else {
            continue;
        };
        match current.get(&key) {
            None => report.missing.push(key),
            Some(&now) if bound.violated(base, now) => report.regressions.push(Regression {
                key,
                baseline: base,
                current: now,
            }),
            Some(&now) => report.passed.push((key, base, now)),
        }
    }
    report
}

/// Gates the current artifact against the baseline: every baseline key
/// whose dotted path contains `p50` (latencies — lower is better) must be
/// ≤ `baseline × (1 + tolerance)` in the current artifact.
pub fn compare_p50s(baseline: &Json, current: &Json, tolerance: f64) -> GateReport {
    compare_with(baseline, current, |key| {
        key.contains("p50").then_some(Bound::Upper(tolerance))
    })
}

/// Gates both latency quantiles: `p50` keys at `tolerance_p50` and `p99`
/// keys at the (looser) `tolerance_p99` — tail latencies are far noisier
/// than medians, so they get more headroom, but an unbounded p99 regression
/// still cannot slip through on a green median.
pub fn compare_latencies(
    baseline: &Json,
    current: &Json,
    tolerance_p50: f64,
    tolerance_p99: f64,
) -> GateReport {
    compare_with(baseline, current, |key| {
        if key.contains("p50") {
            Some(Bound::Upper(tolerance_p50))
        } else if key.contains("p99") {
            Some(Bound::Upper(tolerance_p99))
        } else {
            None
        }
    })
}

/// The full serving gate: latency quantiles bounded from above exactly as
/// [`compare_latencies`], plus every `rps` key bounded from *below* at
/// `tolerance_rps` — connection-scaling throughput (the `conns_64` /
/// `conns_256` sections of `BENCH_net.json`) may not quietly collapse while
/// per-request medians stay green.
pub fn compare_scaling(
    baseline: &Json,
    current: &Json,
    tolerance_p50: f64,
    tolerance_p99: f64,
    tolerance_rps: f64,
) -> GateReport {
    compare_with(baseline, current, |key| {
        if key.contains("p50") {
            Some(Bound::Upper(tolerance_p50))
        } else if key.contains("p99") {
            Some(Bound::Upper(tolerance_p99))
        } else if key.contains("rps") {
            Some(Bound::Lower(tolerance_rps))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "num_docs": 57,
        "ingest_docs_per_sec": 1234.5,
        "query_p50_us": { "memtable_only": 80.0, "one_segment": 40.0 },
        "conns_8": { "threshold": { "p50_us": 12.5, "p99_us": 30.0 } },
        "labels": ["a", "b"],
        "flag": true,
        "nothing": null
    }"#;

    #[test]
    fn parses_and_flattens_bench_artifacts() {
        let json = parse(SAMPLE).unwrap();
        let flat = flatten_numbers(&json);
        let get = |k: &str| flat.iter().find(|(key, _)| key == k).map(|&(_, v)| v);
        assert_eq!(get("num_docs"), Some(57.0));
        assert_eq!(get("query_p50_us.memtable_only"), Some(80.0));
        assert_eq!(get("conns_8.threshold.p50_us"), Some(12.5));
        assert_eq!(get("conns_8.threshold.p99_us"), Some(30.0));
    }

    #[test]
    fn malformed_json_is_a_clean_error() {
        for bad in ["", "{", "{\"a\": }", "[1,]", "{\"a\":1} x", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn scientific_and_negative_numbers_parse() {
        let json = parse(r#"{"a": -1.5e3, "b": 2E-2}"#).unwrap();
        let flat = flatten_numbers(&json);
        assert_eq!(flat[0], ("a".into(), -1500.0));
        assert_eq!(flat[1], ("b".into(), 0.02));
    }

    #[test]
    fn only_p50_keys_are_gated() {
        let baseline = parse(SAMPLE).unwrap();
        // Throughput collapses and p99 doubles: the p50-only gate does not
        // care.
        let current = parse(
            r#"{
            "num_docs": 57,
            "ingest_docs_per_sec": 1.0,
            "query_p50_us": { "memtable_only": 81.0, "one_segment": 40.0 },
            "conns_8": { "threshold": { "p50_us": 12.5, "p99_us": 300.0 } }
        }"#,
        )
        .unwrap();
        let report = compare_p50s(&baseline, &current, 0.30);
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.passed.len(), 3);
    }

    #[test]
    fn p99_keys_are_gated_at_their_own_tolerance() {
        let baseline = parse(SAMPLE).unwrap();
        // p99 grew 10x while every p50 held: the two-quantile gate fails
        // exactly the tail.
        let current = parse(
            r#"{
            "query_p50_us": { "memtable_only": 80.0, "one_segment": 40.0 },
            "conns_8": { "threshold": { "p50_us": 12.5, "p99_us": 300.0 } }
        }"#,
        )
        .unwrap();
        let report = compare_latencies(&baseline, &current, 0.30, 0.50);
        assert_eq!(report.regressions.len(), 1, "{report:?}");
        assert_eq!(report.regressions[0].key, "conns_8.threshold.p99_us");
        assert_eq!(report.passed.len(), 3);

        // A p99 within its looser headroom passes even where the p50
        // tolerance would have failed it (40.0 vs 30.0 = +33%).
        let current = parse(
            r#"{
            "query_p50_us": { "memtable_only": 80.0, "one_segment": 40.0 },
            "conns_8": { "threshold": { "p50_us": 12.5, "p99_us": 40.0 } }
        }"#,
        )
        .unwrap();
        let report = compare_latencies(&baseline, &current, 0.30, 0.50);
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.passed.len(), 4);

        // A vanished p99 key fails the gate like a vanished p50.
        let current = parse(
            r#"{"query_p50_us": { "memtable_only": 80.0, "one_segment": 40.0 },
            "conns_8": { "threshold": { "p50_us": 12.5 } }}"#,
        )
        .unwrap();
        let report = compare_latencies(&baseline, &current, 0.30, 0.50);
        assert_eq!(report.missing, vec!["conns_8.threshold.p99_us".to_string()]);
    }

    #[test]
    fn rps_keys_are_gated_from_below() {
        let baseline = parse(
            r#"{
            "conns_256": { "throughput_rps": 10000.0,
                           "threshold": { "p50_us": 100.0 } },
            "ingest_docs_per_sec": 500.0
        }"#,
        )
        .unwrap();
        // Throughput collapsed to a third while the median held: the
        // scaling gate fails exactly the rps key (docs/sec is not gated).
        let current = parse(
            r#"{
            "conns_256": { "throughput_rps": 3333.0,
                           "threshold": { "p50_us": 100.0 } },
            "ingest_docs_per_sec": 1.0
        }"#,
        )
        .unwrap();
        let report = compare_scaling(&baseline, &current, 0.30, 0.50, 0.50);
        assert_eq!(report.regressions.len(), 1, "{report:?}");
        assert_eq!(report.regressions[0].key, "conns_256.throughput_rps");
        assert_eq!(report.passed.len(), 1);

        // Faster-than-baseline throughput passes with any headroom to
        // spare; a *higher* rps can never regress.
        let current = parse(
            r#"{
            "conns_256": { "throughput_rps": 50000.0,
                           "threshold": { "p50_us": 100.0 } },
            "ingest_docs_per_sec": 500.0
        }"#,
        )
        .unwrap();
        let report = compare_scaling(&baseline, &current, 0.30, 0.50, 0.50);
        assert!(report.ok(), "{report:?}");

        // A vanished rps key fails like a vanished latency key.
        let current = parse(
            r#"{"conns_256": { "threshold": { "p50_us": 100.0 } },
                "ingest_docs_per_sec": 500.0}"#,
        )
        .unwrap();
        let report = compare_scaling(&baseline, &current, 0.30, 0.50, 0.50);
        assert_eq!(report.missing, vec!["conns_256.throughput_rps".to_string()]);
    }

    #[test]
    fn regressions_beyond_tolerance_fail() {
        let baseline = parse(r#"{"p50_us": 100.0, "other_p50": 10.0}"#).unwrap();
        let current = parse(r#"{"p50_us": 131.0, "other_p50": 12.9}"#).unwrap();
        let report = compare_p50s(&baseline, &current, 0.30);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].key, "p50_us");
        assert_eq!(report.passed.len(), 1, "12.9 <= 10 * 1.3 passes");
    }

    #[test]
    fn missing_gated_keys_fail() {
        let baseline = parse(r#"{"a": {"p50_us": 5.0}}"#).unwrap();
        let current = parse(r#"{"b": {"p50_us": 5.0}}"#).unwrap();
        let report = compare_p50s(&baseline, &current, 0.30);
        assert!(!report.ok());
        assert_eq!(report.missing, vec!["a.p50_us".to_string()]);
    }
}
