//! `bench-gate` — fails CI when a bench artifact's latencies regress
//! against the committed baselines.
//!
//! ```text
//! bench-gate [--baseline-dir BENCH_baseline] [--tolerance 0.30] \
//!            [--tolerance-p99 0.50] [--tolerance-rps 0.50] [--update] \
//!            NAME=CURRENT_PATH ...
//! ```
//!
//! Each `NAME=PATH` pair compares the freshly produced artifact at `PATH`
//! against `BASELINE_DIR/NAME`. Keys whose dotted path contains `p50` are
//! gated at `--tolerance`; keys containing `p99` at the looser
//! `--tolerance-p99` (tails are noisier, but may not regress unboundedly);
//! keys containing `rps` are gated from *below* at `--tolerance-rps`, so
//! connection-scaling throughput cannot quietly collapse. A latency above
//! `baseline × (1 + tolerance)`, a throughput below
//! `baseline × (1 - tolerance)`, or a gated baseline key missing from the
//! current artifact fails with exit code 1.
//!
//! Refreshing baselines (the skip path): run with `--update` to overwrite
//! `BASELINE_DIR/NAME` with the current artifacts and exit 0, commit the
//! result. A missing baseline file is reported as `SKIP` and passes, so
//! brand-new benches gate only once their baseline lands.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use ustr_bench::gate::{compare_scaling, parse};

fn run() -> Result<bool, String> {
    let mut baseline_dir = "BENCH_baseline".to_string();
    let mut tolerance = 0.30f64;
    let mut tolerance_p99 = 0.50f64;
    let mut tolerance_rps = 0.50f64;
    let mut update = false;
    let mut pairs: Vec<(String, String)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline-dir" => {
                baseline_dir = args.next().ok_or("--baseline-dir needs a value")?;
            }
            "--tolerance" => {
                let raw = args.next().ok_or("--tolerance needs a value")?;
                tolerance = raw
                    .parse()
                    .map_err(|_| format!("invalid tolerance {raw:?}"))?;
            }
            "--tolerance-p99" => {
                let raw = args.next().ok_or("--tolerance-p99 needs a value")?;
                tolerance_p99 = raw
                    .parse()
                    .map_err(|_| format!("invalid tolerance {raw:?}"))?;
            }
            "--tolerance-rps" => {
                let raw = args.next().ok_or("--tolerance-rps needs a value")?;
                tolerance_rps = raw
                    .parse()
                    .map_err(|_| format!("invalid tolerance {raw:?}"))?;
            }
            "--update" => update = true,
            other => {
                let (name, path) = other
                    .split_once('=')
                    .ok_or_else(|| format!("expected NAME=PATH, got {other:?}"))?;
                pairs.push((name.to_string(), path.to_string()));
            }
        }
    }
    if pairs.is_empty() {
        return Err("no NAME=PATH artifact pairs given".into());
    }

    let mut all_ok = true;
    for (name, current_path) in &pairs {
        let baseline_path = format!("{baseline_dir}/{name}");
        let current_text = std::fs::read_to_string(current_path)
            .map_err(|e| format!("cannot read current artifact {current_path}: {e}"))?;
        // The current artifact must at least be valid JSON, even in
        // --update mode: a broken bench must not become the baseline.
        let current = parse(&current_text).map_err(|e| format!("{current_path}: {e}"))?;

        if update {
            std::fs::create_dir_all(&baseline_dir)
                .map_err(|e| format!("cannot create {baseline_dir}: {e}"))?;
            std::fs::write(&baseline_path, &current_text)
                .map_err(|e| format!("cannot write {baseline_path}: {e}"))?;
            println!("UPDATE {name}: baseline refreshed from {current_path}");
            continue;
        }

        let baseline_text = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(_) => {
                println!(
                    "SKIP {name}: no baseline at {baseline_path} \
                     (run with --update to record one)"
                );
                continue;
            }
        };
        let baseline = parse(&baseline_text).map_err(|e| format!("{baseline_path}: {e}"))?;
        let report = compare_scaling(&baseline, &current, tolerance, tolerance_p99, tolerance_rps);
        // The p50/p99/rps split mirrors the comparator's gating rule; rps
        // keys are lower-bounded (slower is a negative drift).
        let tolerance_of = |key: &str| {
            let key = key.to_ascii_lowercase();
            if key.contains("p50") {
                tolerance
            } else if key.contains("p99") {
                tolerance_p99
            } else {
                tolerance_rps
            }
        };
        for (key, base, now) in &report.passed {
            println!(
                "  ok   {name} {key}: {now:.1} vs baseline {base:.1} \
                 ({:+.1}%, tolerance {:.0}%)",
                (now / base - 1.0) * 100.0,
                tolerance_of(key) * 100.0
            );
        }
        for key in &report.missing {
            all_ok = false;
            println!("  FAIL {name} {key}: gated metric missing from {current_path}");
        }
        for r in &report.regressions {
            all_ok = false;
            println!(
                "  FAIL {name} {}: {:.1} vs baseline {:.1} ({:+.1}% exceeds the {:.0}% tolerance)",
                r.key,
                r.current,
                r.baseline,
                (r.current / r.baseline - 1.0) * 100.0,
                tolerance_of(&r.key) * 100.0
            );
        }
        println!(
            "{} {name}: {} gated metric(s), {} regression(s), {} missing",
            if report.ok() { "PASS" } else { "FAIL" },
            report.passed.len() + report.regressions.len() + report.missing.len(),
            report.regressions.len(),
            report.missing.len()
        );
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!(
                "bench-gate: regression(s) detected; if intentional, refresh the \
                 baselines with --update and commit BENCH_baseline/"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::FAILURE
        }
    }
}
