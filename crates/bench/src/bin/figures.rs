//! Regenerates every figure of the paper's evaluation (Section 8).
//!
//! Usage:
//!   cargo run -p ustr-bench --release --bin figures -- \[PANEL\] \[--full\]
//!
//! PANEL ∈ {fig7a, fig7b, fig7c, fig7d, fig8a, fig8b, fig8c, fig8d,
//!          fig9a, fig9b, fig9c, all}. Default: all.
//!
//! `--full` uses the paper's n range (up to 300K positions); the default
//! uses reduced sizes that finish in a few minutes. Absolute times differ
//! from the paper's 2015 C++/i5 testbed; the *shapes* are the comparison
//! target (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use std::time::Instant;

use ustr_bench::{avg_query_micros, listing_cell, print_table, substring_cell, THETAS};
use ustr_core::{Index, ListingIndex};
use ustr_workload::{generate_collection, generate_string, DatasetConfig};

struct Scale {
    /// n sweep for the (a) panels and Figure 9.
    ns: Vec<usize>,
    /// Fixed n for the τ/τmin/m sweeps.
    n_fixed: usize,
}

fn scale(full: bool) -> Scale {
    if full {
        Scale {
            ns: vec![2_000, 50_000, 100_000, 200_000, 300_000],
            n_fixed: 100_000,
        }
    } else {
        Scale {
            ns: vec![2_000, 10_000, 25_000, 50_000],
            n_fixed: 20_000,
        }
    }
}

const SEED: u64 = 0xEDB7_2016;
const TAU_MIN_DEFAULT: f64 = 0.1;
const TAU_DEFAULT: f64 = 0.2;

fn theta_cols(mut f: impl FnMut(f64) -> Vec<f64>) -> Vec<(String, Vec<f64>)> {
    THETAS
        .iter()
        .map(|&theta| (format!("theta={theta}"), f(theta)))
        .collect()
}

/// Fig 7(a): substring query time vs n.
fn fig7a(s: &Scale) {
    let xs: Vec<String> = s.ns.iter().map(|n| format!("{}", n / 1000)).collect();
    let cols = theta_cols(|theta| {
        s.ns.iter()
            .map(|&n| {
                let cell = substring_cell(n, theta, TAU_MIN_DEFAULT, SEED);
                avg_query_micros(
                    |p| {
                        let _ = cell.index.query(p, TAU_DEFAULT).map(|r| r.len());
                    },
                    &cell.patterns,
                    3,
                )
            })
            .collect()
    });
    print_table(
        "Fig 7(a) substring search: query time vs n (x1000 positions)",
        "n/1000",
        &xs,
        &cols,
        "us/query",
    );
}

/// Fig 7(b): substring query time vs τ (τmin fixed at 0.1).
fn fig7b(s: &Scale) {
    let taus = [0.10, 0.11, 0.12, 0.13, 0.14];
    let xs: Vec<String> = taus.iter().map(|t| format!("{t}")).collect();
    let cols = theta_cols(|theta| {
        let cell = substring_cell(s.n_fixed, theta, TAU_MIN_DEFAULT, SEED);
        taus.iter()
            .map(|&tau| {
                avg_query_micros(
                    |p| {
                        let _ = cell.index.query(p, tau).map(|r| r.len());
                    },
                    &cell.patterns,
                    3,
                )
            })
            .collect()
    });
    print_table(
        "Fig 7(b) substring search: query time vs tau",
        "tau",
        &xs,
        &cols,
        "us/query",
    );
}

/// Fig 7(c): substring query time vs τmin (index rebuilt per τmin).
fn fig7c(s: &Scale) {
    let tau_mins = [0.05, 0.10, 0.15, 0.20];
    let xs: Vec<String> = tau_mins.iter().map(|t| format!("{t}")).collect();
    let cols = theta_cols(|theta| {
        tau_mins
            .iter()
            .map(|&tau_min| {
                let cell = substring_cell(s.n_fixed, theta, tau_min, SEED);
                let tau = TAU_DEFAULT.max(tau_min);
                avg_query_micros(
                    |p| {
                        let _ = cell.index.query(p, tau).map(|r| r.len());
                    },
                    &cell.patterns,
                    3,
                )
            })
            .collect()
    });
    print_table(
        "Fig 7(c) substring search: query time vs tau_min",
        "tau_min",
        &xs,
        &cols,
        "us/query",
    );
}

/// Fig 7(d): substring query time vs pattern length m. This panel builds
/// at τmin = 0.05 and queries at τ = τmin so that long patterns keep
/// producing output; otherwise long queries exit at the locus and the
/// blocking path is never exercised (the paper's §8.2 notes the same
/// probability-horizon effect).
fn fig7d(s: &Scale) {
    let tau_min = 0.05;
    let ms = [5usize, 10, 15, 20, 25, 40, 80];
    let xs: Vec<String> = ms.iter().map(|m| format!("{m}")).collect();
    let cols = theta_cols(|theta| {
        let source = generate_string(&DatasetConfig::new(s.n_fixed, theta, SEED));
        let index = Index::build(&source, tau_min).expect("build");
        ms.iter()
            .map(|&m| {
                let patterns = ustr_workload::sample_patterns(
                    &source,
                    m,
                    ustr_bench::PATTERNS_PER_CELL,
                    ustr_workload::PatternMode::Probable,
                    SEED ^ m as u64,
                );
                avg_query_micros(
                    |p| {
                        let _ = index.query(p, tau_min).map(|r| r.len());
                    },
                    &patterns,
                    3,
                )
            })
            .collect()
    });
    print_table(
        "Fig 7(d) substring search: query time vs pattern length m",
        "m",
        &xs,
        &cols,
        "us/query",
    );
}

/// Fig 8(a): listing query time vs n.
fn fig8a(s: &Scale) {
    let xs: Vec<String> = s.ns.iter().map(|n| format!("{}", n / 1000)).collect();
    let cols = theta_cols(|theta| {
        s.ns.iter()
            .map(|&n| {
                let cell = listing_cell(n, theta, TAU_MIN_DEFAULT, SEED);
                avg_query_micros(
                    |p| {
                        let _ = cell.index.query(p, TAU_DEFAULT).map(|r| r.len());
                    },
                    &cell.patterns,
                    3,
                )
            })
            .collect()
    });
    print_table(
        "Fig 8(a) string listing: query time vs n (x1000 positions)",
        "n/1000",
        &xs,
        &cols,
        "us/query",
    );
}

/// Fig 8(b): listing query time vs τ.
fn fig8b(s: &Scale) {
    let taus = [0.10, 0.11, 0.12, 0.13, 0.14];
    let xs: Vec<String> = taus.iter().map(|t| format!("{t}")).collect();
    let cols = theta_cols(|theta| {
        let cell = listing_cell(s.n_fixed, theta, TAU_MIN_DEFAULT, SEED);
        taus.iter()
            .map(|&tau| {
                avg_query_micros(
                    |p| {
                        let _ = cell.index.query(p, tau).map(|r| r.len());
                    },
                    &cell.patterns,
                    3,
                )
            })
            .collect()
    });
    print_table(
        "Fig 8(b) string listing: query time vs tau",
        "tau",
        &xs,
        &cols,
        "us/query",
    );
}

/// Fig 8(c): listing query time vs τmin.
fn fig8c(s: &Scale) {
    let tau_mins = [0.05, 0.10, 0.15, 0.20];
    let xs: Vec<String> = tau_mins.iter().map(|t| format!("{t}")).collect();
    let cols = theta_cols(|theta| {
        tau_mins
            .iter()
            .map(|&tau_min| {
                let cell = listing_cell(s.n_fixed, theta, tau_min, SEED);
                let tau = TAU_DEFAULT.max(tau_min);
                avg_query_micros(
                    |p| {
                        let _ = cell.index.query(p, tau).map(|r| r.len());
                    },
                    &cell.patterns,
                    3,
                )
            })
            .collect()
    });
    print_table(
        "Fig 8(c) string listing: query time vs tau_min",
        "tau_min",
        &xs,
        &cols,
        "us/query",
    );
}

/// Fig 8(d): listing query time vs pattern length m (τmin = τ = 0.05, as
/// in 7d).
fn fig8d(s: &Scale) {
    let tau_min = 0.05;
    let ms = [5usize, 10, 15, 20, 25, 40];
    let xs: Vec<String> = ms.iter().map(|m| format!("{m}")).collect();
    let cols = theta_cols(|theta| {
        let docs = generate_collection(&DatasetConfig::new(s.n_fixed, theta, SEED));
        let index = ListingIndex::build(&docs, tau_min).expect("build");
        let concat = ustr_uncertain::UncertainString::new(
            docs.iter()
                .flat_map(|d| d.positions().iter().cloned())
                .collect(),
        );
        ms.iter()
            .map(|&m| {
                let patterns = ustr_workload::sample_patterns(
                    &concat,
                    m,
                    ustr_bench::PATTERNS_PER_CELL,
                    ustr_workload::PatternMode::Probable,
                    SEED ^ m as u64,
                );
                avg_query_micros(
                    |p| {
                        let _ = index.query(p, tau_min).map(|r| r.len());
                    },
                    &patterns,
                    3,
                )
            })
            .collect()
    });
    print_table(
        "Fig 8(d) string listing: query time vs pattern length m",
        "m",
        &xs,
        &cols,
        "us/query",
    );
}

/// Fig 9(a): construction time vs n.
fn fig9a(s: &Scale) {
    let xs: Vec<String> = s.ns.iter().map(|n| format!("{}", n / 1000)).collect();
    let cols = theta_cols(|theta| {
        s.ns.iter()
            .map(|&n| {
                let source = generate_string(&DatasetConfig::new(n, theta, SEED));
                let t0 = Instant::now();
                let idx = Index::build(&source, TAU_MIN_DEFAULT).expect("build");
                let secs = t0.elapsed().as_secs_f64();
                std::hint::black_box(idx.stats().transformed_len);
                secs
            })
            .collect()
    });
    print_table(
        "Fig 9(a) construction time vs n (x1000 positions)",
        "n/1000",
        &xs,
        &cols,
        "seconds",
    );
}

/// Fig 9(b): construction time vs τmin.
fn fig9b(s: &Scale) {
    let tau_mins = [0.05, 0.10, 0.15, 0.20];
    let xs: Vec<String> = tau_mins.iter().map(|t| format!("{t}")).collect();
    let cols = theta_cols(|theta| {
        let source = generate_string(&DatasetConfig::new(s.n_fixed, theta, SEED));
        tau_mins
            .iter()
            .map(|&tau_min| {
                // Average two builds: single-build times are allocator-noisy.
                let t0 = Instant::now();
                for _ in 0..2 {
                    let idx = Index::build(&source, tau_min).expect("build");
                    std::hint::black_box(idx.stats().transformed_len);
                }
                t0.elapsed().as_secs_f64() / 2.0
            })
            .collect()
    });
    print_table(
        "Fig 9(b) construction time vs tau_min",
        "tau_min",
        &xs,
        &cols,
        "seconds",
    );
}

/// Fig 9(c): index space vs n.
fn fig9c(s: &Scale) {
    let xs: Vec<String> = s.ns.iter().map(|n| format!("{}", n / 1000)).collect();
    let cols = theta_cols(|theta| {
        s.ns.iter()
            .map(|&n| {
                let source = generate_string(&DatasetConfig::new(n, theta, SEED));
                let idx = Index::build(&source, TAU_MIN_DEFAULT).expect("build");
                idx.stats().heap_mib()
            })
            .collect()
    });
    print_table(
        "Fig 9(c) index space vs n (x1000 positions)",
        "n/1000",
        &xs,
        &cols,
        "MiB",
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let panel = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("all");
    const PANELS: [&str; 12] = [
        "all", "fig7a", "fig7b", "fig7c", "fig7d", "fig8a", "fig8b", "fig8c", "fig8d", "fig9a",
        "fig9b", "fig9c",
    ];
    if !PANELS.contains(&panel) {
        eprintln!("unknown panel {panel:?}; expected one of {PANELS:?}");
        std::process::exit(2);
    }
    let s = scale(full);

    println!(
        "# Probabilistic Threshold Indexing — figure harness ({} scale)",
        if full { "paper (--full)" } else { "reduced" }
    );
    println!(
        "# defaults: tau_min={TAU_MIN_DEFAULT}, tau={TAU_DEFAULT}, theta in {THETAS:?}, seed={SEED:#x}"
    );

    let t0 = Instant::now();
    let run = |name: &str| panel == "all" || panel == name;
    if run("fig7a") {
        fig7a(&s);
    }
    if run("fig7b") {
        fig7b(&s);
    }
    if run("fig7c") {
        fig7c(&s);
    }
    if run("fig7d") {
        fig7d(&s);
    }
    if run("fig8a") {
        fig8a(&s);
    }
    if run("fig8b") {
        fig8b(&s);
    }
    if run("fig8c") {
        fig8c(&s);
    }
    if run("fig8d") {
        fig8d(&s);
    }
    if run("fig9a") {
        fig9a(&s);
    }
    if run("fig9b") {
        fig9b(&s);
    }
    if run("fig9c") {
        fig9c(&s);
    }
    println!("\n# total harness time: {:?}", t0.elapsed());
}
