//! `net-soak` — a sustained connection-scaling soak against a running
//! `ustr serve-net` server, built for the CI `net-soak` job.
//!
//! ```text
//! net-soak gen-docs OUT N [SEED]
//! net-soak run HOST:PORT [--conns 256] [--seconds 30] [--batch 16] \
//!          [--out BENCH_net.json]
//! ```
//!
//! `gen-docs` writes a generated collection totalling `N` positions (the
//! paper's `n` — the same axis the benches sweep) in the CLI's text
//! format, one uncertain string per line, so the job can feed the
//! *release `serve-net` binary* the same corpus shape the benches use. `run` opens `--conns`
//! connections, pipelines mixed-mode batches on every one of them until
//! the deadline, then closes each session with a `Goodbye`, and writes a
//! JSON summary to `--out`.
//!
//! The job's three assertions map to exit codes:
//! - **zero error frames** — any per-request error (or failed round trip)
//!   exits 1;
//! - **no stuck connections** — a watchdog thread force-exits 3 if the
//!   load has not wound down within a grace period after the deadline
//!   (a connection wedged in a read would otherwise hang the job until
//!   the CI-level timeout, with no artifact);
//! - **clean draining shutdown** — every session ends with `Goodbye`, so
//!   a `--max-conns`-bounded server drains and exits 0 on its own; the
//!   job asserts that by waiting on the server process.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ustr_net::{NetClient, QueryRequest};
use ustr_workload::{generate_collection, DatasetConfig};

/// Extra time the load gets to wind down (drain pipelined responses and
/// say `Goodbye`) after the deadline before the watchdog declares the run
/// stuck.
const WATCHDOG_GRACE: Duration = Duration::from_secs(60);

/// The mixed-mode request cycle every connection pipelines.
fn modes() -> Vec<QueryRequest> {
    vec![
        QueryRequest::Threshold {
            pattern: b"ab".to_vec(),
            tau: 0.3,
        },
        QueryRequest::TopK {
            pattern: b"ab".to_vec(),
            k: 5,
        },
        QueryRequest::Listing {
            pattern: b"ba".to_vec(),
            tau: 0.2,
        },
        QueryRequest::Approx {
            pattern: b"ab".to_vec(),
            tau: 0.3,
        },
    ]
}

struct ConnOutcome {
    answered: usize,
    errors: usize,
}

/// One soak connection: pipelined mixed-mode batches until `deadline`,
/// then a graceful `Goodbye`. Wire failures count as errors rather than
/// panicking, so one bad connection cannot hide the others' tallies.
fn drive(addr: &str, batch: &[QueryRequest], deadline: Instant) -> ConnOutcome {
    let mut out = ConnOutcome {
        answered: 0,
        errors: 0,
    };
    let mut client = match NetClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("net-soak: connect {addr}: {e}");
            out.errors += 1;
            return out;
        }
    };
    while Instant::now() < deadline {
        match client.query_requests(batch) {
            Ok(answers) => {
                for a in &answers {
                    if a.is_ok() {
                        out.answered += 1;
                    } else {
                        out.errors += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("net-soak: batch failed: {e}");
                out.errors += 1;
                return out;
            }
        }
    }
    let _ = client.goodbye();
    out
}

fn gen_docs(args: &[String]) -> Result<String, String> {
    let out_path = args.first().ok_or("gen-docs needs OUT and N")?;
    let n: usize = args
        .get(1)
        .ok_or("gen-docs needs OUT and N")?
        .parse()
        .map_err(|_| "invalid N".to_string())?;
    let seed: u64 = match args.get(2) {
        Some(raw) => raw.parse().map_err(|_| "invalid SEED".to_string())?,
        None => 43,
    };
    let docs = generate_collection(&DatasetConfig::new(n, 0.25, seed));
    let mut text = String::new();
    for d in &docs {
        text.push_str(&d.to_string());
        text.push('\n');
    }
    std::fs::write(out_path, text).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(format!("wrote {} docs to {out_path}", docs.len()))
}

fn run_soak(args: &[String]) -> Result<String, String> {
    let addr = args.first().ok_or("run needs HOST:PORT")?.clone();
    let mut conns = 256usize;
    let mut seconds = 30u64;
    let mut batch_size = 16usize;
    let mut out_path = "BENCH_net.json".to_string();
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        let mut value = |what: &str| {
            rest.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--conns" => {
                conns = value("--conns")?
                    .parse()
                    .map_err(|_| "invalid --conns".to_string())?;
            }
            "--seconds" => {
                seconds = value("--seconds")?
                    .parse()
                    .map_err(|_| "invalid --seconds".to_string())?;
            }
            "--batch" => {
                batch_size = value("--batch")?
                    .parse()
                    .map_err(|_| "invalid --batch".to_string())?;
            }
            "--out" => out_path = value("--out")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }

    let modes = modes();
    let batch: Vec<QueryRequest> = (0..batch_size.max(1))
        .map(|i| modes[i % modes.len()].clone())
        .collect();

    // The watchdog turns a wedged connection (stuck in a read, never
    // reaching its deadline) into a crisp exit code instead of a hung job.
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        let limit = Duration::from_secs(seconds) + WATCHDOG_GRACE;
        std::thread::spawn(move || {
            std::thread::sleep(limit);
            // ordering: Relaxed — a plain completion flag; the watchdog
            // only ever reads it after a long sleep.
            if !done.load(Ordering::Relaxed) {
                eprintln!(
                    "net-soak: load did not finish within {}s after the deadline — \
                     stuck connection(s)",
                    WATCHDOG_GRACE.as_secs()
                );
                std::process::exit(3);
            }
        });
    }

    println!("net-soak: {conns} connection(s) against {addr} for {seconds}s");
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(seconds);
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|_| {
                let addr = &addr;
                let batch = &batch;
                scope.spawn(move || drive(addr, batch, deadline))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(ConnOutcome {
                    answered: 0,
                    errors: 1,
                })
            })
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    // ordering: Relaxed — same plain completion flag as above.
    done.store(true, Ordering::Relaxed);

    let answered: usize = outcomes.iter().map(|o| o.answered).sum();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    let rps = answered as f64 / wall;
    let json = format!(
        "{{\n  \"soak\": {{\n    \"conns\": {conns},\n    \"seconds\": {seconds},\n    \
         \"wall_seconds\": {wall:.3},\n    \"requests\": {answered},\n    \
         \"throughput_rps\": {rps:.1},\n    \"error_frames\": {errors}\n  }}\n}}\n",
    );
    let mut file =
        std::fs::File::create(&out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    file.write_all(json.as_bytes())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    print!("{json}");

    if errors > 0 {
        return Err(format!("{errors} error frame(s) during the soak"));
    }
    Ok(format!(
        "{answered} request(s) over {conns} connection(s) in {wall:.1}s \
         ({rps:.0} req/s), zero error frames"
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen-docs") => gen_docs(&args[1..]),
        Some("run") => run_soak(&args[1..]),
        _ => Err("usage: net-soak (gen-docs OUT N [SEED] | run HOST:PORT \
                  [--conns N] [--seconds S] [--batch B] [--out PATH])"
            .to_string()),
    };
    match result {
        Ok(summary) => {
            println!("net-soak: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("net-soak: {e}");
            ExitCode::FAILURE
        }
    }
}
