//! Shared measurement utilities for the figure harness and criterion
//! benches (Section 8 of the paper), plus the CI perf-regression gate
//! ([`gate`]).

#![forbid(unsafe_code)]

pub mod gate;

use std::time::{Duration, Instant};

use ustr_core::{Index, ListingIndex};
use ustr_uncertain::UncertainString;
use ustr_workload::{
    generate_collection, generate_string, sample_patterns, DatasetConfig, PatternMode,
};

/// θ sweep used by every figure.
pub const THETAS: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

/// Query lengths averaged in Figures 7a/8a (the paper uses 10, 100, 500,
/// 1000; lengths beyond the probability horizon simply return empty fast,
/// exactly as in the paper).
pub const QUERY_LENGTHS: [usize; 4] = [10, 100, 500, 1000];

/// Patterns per (length, dataset) cell.
pub const PATTERNS_PER_CELL: usize = 25;

/// One experiment cell: a built index plus its query workload.
pub struct SubstringCell {
    pub source: UncertainString,
    pub index: Index,
    pub patterns: Vec<Vec<u8>>,
}

/// Builds the substring-search cell for (n, θ, τmin) with the standard
/// mixed-length query workload.
pub fn substring_cell(n: usize, theta: f64, tau_min: f64, seed: u64) -> SubstringCell {
    let source = generate_string(&DatasetConfig::new(n, theta, seed));
    let index = Index::build(&source, tau_min).expect("index build");
    let mut patterns = Vec::new();
    for (k, &m) in QUERY_LENGTHS.iter().enumerate() {
        if m > n {
            continue;
        }
        patterns.extend(sample_patterns(
            &source,
            m,
            PATTERNS_PER_CELL,
            PatternMode::Probable,
            seed ^ (k as u64 + 1),
        ));
    }
    SubstringCell {
        source,
        index,
        patterns,
    }
}

/// One listing cell: collection + index + workload.
pub struct ListingCell {
    pub docs: Vec<UncertainString>,
    pub index: ListingIndex,
    pub patterns: Vec<Vec<u8>>,
}

/// Builds the listing cell for (n, θ, τmin). Patterns are sampled from the
/// concatenated collection; lengths are capped by the document lengths.
pub fn listing_cell(n: usize, theta: f64, tau_min: f64, seed: u64) -> ListingCell {
    let docs = generate_collection(&DatasetConfig::new(n, theta, seed));
    let index = ListingIndex::build(&docs, tau_min).expect("listing build");
    let concat = UncertainString::new(
        docs.iter()
            .flat_map(|d| d.positions().iter().cloned())
            .collect(),
    );
    let mut patterns = Vec::new();
    for (k, m) in [4usize, 8, 12, 16].into_iter().enumerate() {
        patterns.extend(sample_patterns(
            &concat,
            m,
            PATTERNS_PER_CELL,
            PatternMode::Probable,
            seed ^ (k as u64 + 11),
        ));
    }
    ListingCell {
        docs,
        index,
        patterns,
    }
}

/// Average wall-clock time of `f` per call over `iters` calls.
pub fn time_avg(iters: usize, mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed() / iters as u32
}

/// Average query latency over a pattern set (microseconds).
pub fn avg_query_micros(mut query: impl FnMut(&[u8]), patterns: &[Vec<u8>], repeat: usize) -> f64 {
    if patterns.is_empty() {
        return 0.0;
    }
    let t0 = Instant::now();
    for _ in 0..repeat {
        for p in patterns {
            query(p);
        }
    }
    t0.elapsed().as_secs_f64() * 1e6 / (patterns.len() * repeat) as f64
}

/// Renders one figure series as an aligned table: rows = sweep values,
/// one column per θ.
pub fn print_table(
    title: &str,
    x_label: &str,
    xs: &[String],
    columns: &[(String, Vec<f64>)],
    unit: &str,
) {
    println!("\n## {title}");
    print!("{x_label:>12}");
    for (name, _) in columns {
        print!(" {name:>14}");
    }
    println!("   ({unit})");
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>12}");
        for (_, series) in columns {
            print!(" {:>14.3}", series[i]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_build_and_answer() {
        let cell = substring_cell(2000, 0.2, 0.1, 1);
        assert!(!cell.patterns.is_empty());
        let hits = cell.index.query(&cell.patterns[0], 0.2).unwrap();
        let _ = hits.len();
        let cell = listing_cell(1000, 0.2, 0.1, 1);
        assert!(!cell.patterns.is_empty());
        let _ = cell.index.query(&cell.patterns[0], 0.2).unwrap();
    }

    #[test]
    fn timing_helpers_return_positive() {
        let d = time_avg(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(d.as_nanos() < 1_000_000_000);
        let micros = avg_query_micros(|_| (), &[vec![1u8]], 2);
        assert!(micros >= 0.0);
    }
}
