//! Edge cases and failure injection promised in DESIGN.md §7: numeric
//! extremes, degenerate strings, boundary thresholds, and hostile inputs.

use uncertain_strings::{
    baseline::NaiveScanner, ApproxIndex, Index, ListingIndex, SpecialIndex, SpecialUncertainString,
    UncertainChar, UncertainString,
};

#[test]
fn underflow_scale_products_are_handled_in_log_space() {
    // 20K characters at probability 0.9: a plain f64 product underflows to
    // zero after ~7000 characters; log space must stay exact.
    let positions: Vec<UncertainChar> = (0..20_000)
        .map(|i| UncertainChar::new(vec![(b'a', 0.9), (b'b', 0.1)], i).unwrap())
        .collect();
    let s = UncertainString::new(positions);
    let long = vec![b'a'; 20_000];
    let lp = s.log_match_probability(&long, 0);
    assert!(lp.is_finite());
    assert!((lp - 20_000.0 * 0.9f64.ln()).abs() < 1e-6);
    // The full-length probability in linear space IS zero — but queries at
    // realistic lengths still verify exactly.
    let idx = Index::build(&s, 0.5).unwrap();
    let pattern = vec![b'a'; 6]; // 0.9^6 ≈ .53
    assert_eq!(
        idx.query(&pattern, 0.5).unwrap().positions().len(),
        NaiveScanner::find(&s, &pattern, 0.5).len()
    );
}

#[test]
fn single_position_strings() {
    let s = UncertainString::parse("a:.6,b:.4").unwrap();
    let idx = Index::build(&s, 0.1).unwrap();
    assert_eq!(idx.query(b"a", 0.5).unwrap().positions(), vec![0]);
    assert!(idx.query(b"b", 0.5).unwrap().is_empty());
    assert_eq!(idx.query(b"b", 0.3).unwrap().positions(), vec![0]);
    assert!(idx.query(b"ab", 0.1).unwrap().is_empty());
}

#[test]
fn tau_equals_one_boundary() {
    let s = UncertainString::parse("a | b:.999999999999 | c").unwrap();
    let idx = Index::build(&s, 0.5).unwrap();
    // tau = 1.0 is legal; only certain occurrences qualify (within epsilon).
    assert_eq!(idx.query(b"a", 1.0).unwrap().positions(), vec![0]);
    assert_eq!(idx.query(b"abc", 1.0).unwrap().positions(), vec![0]);
}

#[test]
fn uniform_max_entropy_positions() {
    // Every position uniform over 4 characters: worst case for the factor
    // transform's branching.
    let rows: Vec<Vec<(u8, f64)>> = (0..24)
        .map(|_| vec![(b'a', 0.25), (b'b', 0.25), (b'c', 0.25), (b'd', 0.25)])
        .collect();
    let s = UncertainString::from_rows(rows).unwrap();
    let idx = Index::build(&s, 0.2).unwrap();
    // Only single characters can reach tau = 0.25.
    assert_eq!(idx.query(b"a", 0.25).unwrap().len(), 24);
    assert!(idx.query(b"ab", 0.25).unwrap().is_empty());
    // At tau_min = 0.2 even pairs are invisible (0.0625 < 0.2): the index
    // and the scanner agree everywhere above the floor.
    assert_eq!(
        idx.query(b"ab", 0.2).unwrap().positions(),
        NaiveScanner::find(&s, b"ab", 0.2)
    );
}

#[test]
fn pattern_of_every_length_against_tiny_string() {
    let s = UncertainString::parse("x:.9,y:.1 | y | x:.8,z:.2").unwrap();
    let idx = Index::build(&s, 0.05).unwrap();
    for pattern in [&b"x"[..], b"xy", b"xyx", b"xyxz", b"zzzzzzzz"] {
        assert_eq!(
            idx.query(pattern, 0.05).unwrap().positions(),
            NaiveScanner::find(&s, pattern, 0.05),
            "pattern {pattern:?}"
        );
    }
}

#[test]
fn special_index_on_all_certain_string() {
    let x = SpecialUncertainString::new(b"mississippi".to_vec(), vec![1.0; 11]).unwrap();
    let idx = SpecialIndex::build(&x).unwrap();
    assert_eq!(idx.query(b"issi", 0.999).unwrap().positions(), vec![1, 4]);
    assert_eq!(idx.query(b"i", 1.0).unwrap().len(), 4);
}

#[test]
fn near_zero_probabilities_survive() {
    let s = UncertainString::parse("a:.999999,b:.000001 | a").unwrap();
    let idx = Index::build(&s, 1e-7).unwrap();
    let hits = idx.query(b"ba", 1e-7).unwrap();
    assert_eq!(hits.positions(), vec![0]);
    assert!((hits.hits()[0].1 - 1e-6).abs() < 1e-12);
}

#[test]
fn listing_with_empty_and_tiny_documents() {
    let docs = vec![
        UncertainString::new(Vec::new()),
        UncertainString::parse("a:.9,b:.1").unwrap(),
        UncertainString::deterministic(b"ab"),
    ];
    let idx = ListingIndex::build(&docs, 0.1).unwrap();
    let hits = idx.query(b"a", 0.5).unwrap();
    let ids: Vec<usize> = hits.iter().map(|h| h.doc).collect();
    assert_eq!(ids, vec![1, 2]);
    assert!(idx.query(b"ab", 0.5).unwrap().iter().all(|h| h.doc == 2));
}

#[test]
fn approx_with_epsilon_larger_than_tau_gap() {
    // eps close to tau: everything that exists above tau_min may be
    // reported, but nothing below tau - eps and nothing is missed.
    let s = UncertainString::parse("a:.5,b:.5 | a:.5,b:.5 | a:.5,b:.5").unwrap();
    let idx = ApproxIndex::build(&s, 0.1, 0.3).unwrap();
    let approx = idx.query(b"aa", 0.35).unwrap().positions();
    let exact = NaiveScanner::find(&s, b"aa", 0.35);
    let slack = NaiveScanner::find(&s, b"aa", 0.05);
    for p in &exact {
        assert!(approx.contains(p));
    }
    for p in &approx {
        assert!(slack.contains(p));
    }
}

#[test]
fn identical_repeated_documents_dedupe_correctly() {
    let doc = UncertainString::parse("a:.7,b:.3 | c | d:.6,e:.4").unwrap();
    let docs = vec![doc.clone(), doc.clone(), doc];
    let idx = ListingIndex::build(&docs, 0.1).unwrap();
    let hits = idx.query(b"ac", 0.5).unwrap();
    assert_eq!(hits.len(), 3, "all three identical docs listed once each");
    for h in &hits {
        assert!((h.relevance - 0.7).abs() < 1e-9);
    }
}

#[test]
fn build_rejects_degenerate_thresholds() {
    let s = UncertainString::deterministic(b"ab");
    assert!(Index::build(&s, 0.0).is_err());
    assert!(Index::build(&s, -1.0).is_err());
    assert!(Index::build(&s, 1.5).is_err());
    assert!(Index::build(&s, 1.0).is_ok());
}

#[test]
fn sentinel_free_alphabet_is_enforced_at_model_level() {
    assert!(UncertainChar::new(vec![(0u8, 1.0)], 0).is_err());
    // And patterns with sentinels are rejected at query level (not silently
    // matched against factor separators).
    let s = UncertainString::deterministic(b"ab");
    let idx = Index::build(&s, 0.5).unwrap();
    assert!(idx.query(b"a\0b", 0.5).is_err());
}
