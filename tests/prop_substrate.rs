//! Property tests on the substrate crates: suffix structures, RMQ variants,
//! the transform's conservation property, and the containment DP.

use proptest::prelude::*;
use uncertain_strings::{
    baseline::{containment_probability, PossibleWorldOracle},
    rmq::{BlockRmq, Direction, Rmq, SampledRmq, SparseTable},
    suffix::{lcp_array, suffix_array, SuffixArray, SuffixTree},
    uncertain::{transform, UncertainString},
};

fn text_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c', 0u8]), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SA-IS equals the naive sort on arbitrary byte strings (separator
    /// bytes included).
    #[test]
    fn sais_matches_naive(text in text_strategy()) {
        let mut naive: Vec<u32> = (0..text.len() as u32).collect();
        naive.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        prop_assert_eq!(suffix_array(&text), naive);
    }

    /// Kasai LCP equals direct prefix comparison.
    #[test]
    fn lcp_matches_naive(text in text_strategy()) {
        let sa = suffix_array(&text);
        let lcp = lcp_array(&text, &sa);
        for j in 1..sa.len() {
            let a = &text[sa[j - 1] as usize..];
            let b = &text[sa[j] as usize..];
            let expected = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
            prop_assert_eq!(lcp[j] as usize, expected);
        }
    }

    /// Tree pattern search equals suffix-array binary search equals brute
    /// force, for every substring of the text.
    #[test]
    fn tree_and_array_agree(text in text_strategy(), start in 0usize..100, len in 1usize..6) {
        let start = start % text.len();
        let len = len.min(text.len() - start);
        let pattern = text[start..start + len].to_vec();
        let tree = SuffixTree::build(text.clone());
        let arr = SuffixArray::new(text.clone());
        let mut t_occ = tree.occurrences(&pattern);
        let mut a_occ = arr.occurrences(&pattern);
        t_occ.sort_unstable();
        a_occ.sort_unstable();
        prop_assert_eq!(&t_occ, &a_occ);
        let brute: Vec<usize> = (0..=text.len() - len)
            .filter(|&i| text[i..i + len] == pattern[..])
            .collect();
        prop_assert_eq!(t_occ, brute);
    }

    /// All three RMQ structures agree with a linear scan.
    #[test]
    fn rmq_structures_agree(
        values in prop::collection::vec(-1000i32..1000, 1..300),
        queries in prop::collection::vec((0usize..300, 0usize..300), 1..20),
    ) {
        let values: Vec<f64> = values.into_iter().map(|v| v as f64).collect();
        let n = values.len();
        let sparse = SparseTable::new(&values, Direction::Max);
        let block = BlockRmq::new(&values, Direction::Max);
        let at = |i: usize| values[i];
        let sampled = SampledRmq::new(n, Direction::Max, &at);
        for (a, b) in queries {
            let (l, r) = ((a % n).min(b % n), (a % n).max(b % n));
            let mut best = l;
            for i in l..=r {
                if values[i] > values[best] {
                    best = i;
                }
            }
            prop_assert_eq!(sparse.query(l, r), best);
            prop_assert_eq!(block.query(l, r), best);
            prop_assert_eq!(sampled.query_with(l, r, &at), best);
        }
    }

    /// Lemma 2 (conservation): every pattern sampled from a world of `s`
    /// whose occurrence probability reaches τmin appears in the transformed
    /// text with the correct Pos alignment.
    #[test]
    fn transform_conserves_probable_substrings(
        rows in prop::collection::vec(
            prop::collection::vec((0u8..3, 1u32..10), 1..=2),
            1..=10,
        ),
        start in 0usize..10,
        len in 1usize..5,
    ) {
        let rows: Vec<Vec<(u8, f64)>> = rows
            .into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                let total: u32 = row.iter().map(|&(_, w)| w).sum();
                row.into_iter()
                    .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                    .collect()
            })
            .collect();
        let s = UncertainString::from_rows(rows).unwrap();
        let tau_min = 0.15;
        let t = transform(&s, tau_min).unwrap();
        let start = start % s.len();
        let len = len.min(s.len() - start);
        // Take the most probable world's window as the candidate pattern.
        let world = s.most_probable_world();
        let pattern = &world[start..start + len];
        let prob = s.match_probability(pattern, start);
        if prob >= tau_min {
            let text = t.special.chars();
            let found = (0..=text.len().saturating_sub(len)).any(|k| {
                &text[k..k + len] == pattern
                    && (0..len).all(|d| t.source_pos(k + d) == Some(start + d))
            });
            prop_assert!(found, "conserved substring missing from transform");
        }
    }

    /// The KMP containment DP equals exhaustive world enumeration.
    #[test]
    fn containment_dp_matches_oracle(
        rows in prop::collection::vec(
            prop::collection::vec((0u8..2, 1u32..10), 1..=2),
            1..=8,
        ),
        p in prop::collection::vec(0u8..2, 1..4),
    ) {
        let rows: Vec<Vec<(u8, f64)>> = rows
            .into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                let total: u32 = row.iter().map(|&(_, w)| w).sum();
                row.into_iter()
                    .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                    .collect()
            })
            .collect();
        let s = UncertainString::from_rows(rows).unwrap();
        let pattern: Vec<u8> = p.into_iter().map(|c| b'a' + c).collect();
        let dp = containment_probability(&s, &pattern);
        let oracle = PossibleWorldOracle::containment_probability(&s, &pattern).unwrap();
        prop_assert!((dp - oracle).abs() < 1e-9, "dp {} oracle {}", dp, oracle);
    }
}
