//! Tests for the ranked top-k extension (best-first search over the RMQ
//! levels): results must equal sorting the full threshold-query output.

use proptest::prelude::*;
use uncertain_strings::{
    baseline::NaiveScanner,
    workload::{generate_string, sample_patterns, DatasetConfig, PatternMode},
    Index, ListingIndex, SpecialIndex, SpecialUncertainString, UncertainString,
};

/// Reference top-k: scan all occurrences, sort by probability descending,
/// truncate. Ties make the exact set ambiguous, so comparisons check the
/// probability multiset.
fn reference_top_k(s: &UncertainString, pattern: &[u8], k: usize) -> Vec<f64> {
    let mut probs: Vec<f64> = NaiveScanner::find_with_probs(s, pattern, f64::MIN_POSITIVE)
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    probs.sort_by(|a, b| b.partial_cmp(a).unwrap());
    probs.truncate(k);
    probs
}

#[test]
fn special_index_top_k_is_exact() {
    let x = SpecialUncertainString::new(b"banana".to_vec(), vec![0.4, 0.7, 0.5, 0.8, 0.9, 0.6])
        .unwrap();
    let idx = SpecialIndex::build(&x).unwrap();
    let top = idx.query_top_k(b"ana", 1).unwrap();
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].0, 3);
    assert!((top[0].1 - 0.432).abs() < 1e-9);
    let top = idx.query_top_k(b"ana", 5).unwrap();
    assert_eq!(top.len(), 2);
    assert_eq!(top[0].0, 3);
    assert_eq!(top[1].0, 1);
    assert!(top[0].1 >= top[1].1);
    let top = idx.query_top_k(b"a", 2).unwrap();
    assert_eq!(top.len(), 2);
    // Positions 3 (.8) and 5 (... wait: probabilities .7, .8, .6 at a's).
    assert!((top[0].1 - 0.8).abs() < 1e-9);
    assert!((top[1].1 - 0.7).abs() < 1e-9);
}

#[test]
fn general_index_top_k_matches_reference() {
    let s = generate_string(&DatasetConfig::new(3000, 0.3, 17));
    // Tiny tau_min so the visibility horizon covers everything the naive
    // scanner can see for short patterns.
    let idx = Index::build(&s, 0.01).unwrap();
    for m in [2usize, 4, 6] {
        for pattern in sample_patterns(&s, m, 6, PatternMode::Probable, 23) {
            for k in [1usize, 3, 10] {
                let got: Vec<f64> = idx
                    .query_top_k(&pattern, k)
                    .unwrap()
                    .into_iter()
                    .map(|(_, p)| p)
                    .collect();
                // The index only sees occurrences with probability >= tau_min.
                let reference: Vec<f64> = reference_top_k(&s, &pattern, k)
                    .into_iter()
                    .filter(|&p| p >= 0.01 - 1e-12)
                    .collect();
                assert_eq!(got.len(), reference.len(), "m={m} k={k}");
                for (g, r) in got.iter().zip(reference.iter()) {
                    assert!(
                        (g - r).abs() < 1e-9,
                        "m={m} k={k}: {got:?} vs {reference:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn top_k_long_patterns_use_lazy_bounds() {
    let s = generate_string(&DatasetConfig::new(2000, 0.15, 29));
    let idx = Index::build(&s, 0.02).unwrap();
    for pattern in sample_patterns(&s, 30, 4, PatternMode::Probable, 31) {
        let got: Vec<f64> = idx
            .query_top_k(&pattern, 5)
            .unwrap()
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        let reference: Vec<f64> = reference_top_k(&s, &pattern, 5)
            .into_iter()
            .filter(|&p| p >= 0.02 - 1e-12)
            .collect();
        assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(reference.iter()) {
            assert!((g - r).abs() < 1e-9);
        }
    }
}

#[test]
fn listing_top_k_ranks_documents() {
    let docs = vec![
        UncertainString::parse("A:.9,B:.1 | B | C").unwrap(), // AB at .9
        UncertainString::parse("A:.5,B:.5 | B | C").unwrap(), // AB at .5
        UncertainString::parse("A:.7,B:.3 | B | C").unwrap(), // AB at .7
        UncertainString::parse("C | C | C").unwrap(),         // no AB
    ];
    let idx = ListingIndex::build(&docs, 0.05).unwrap();
    let top = idx.query_top_k(b"AB", 2).unwrap();
    assert_eq!(top.len(), 2);
    assert_eq!(top[0].doc, 0);
    assert!((top[0].relevance - 0.9).abs() < 1e-9);
    assert_eq!(top[1].doc, 2);
    assert!((top[1].relevance - 0.7).abs() < 1e-9);
    // k beyond the candidate set returns everything that matches.
    let top = idx.query_top_k(b"AB", 10).unwrap();
    assert_eq!(top.len(), 3);
    // Missing pattern.
    assert!(idx.query_top_k(b"ZZ", 3).unwrap().is_empty());
}

#[test]
fn top_k_validates_patterns() {
    let s = UncertainString::deterministic(b"abc");
    let idx = Index::build(&s, 0.5).unwrap();
    assert!(idx.query_top_k(b"", 3).is_err());
    assert!(idx.query_top_k(b"a\0", 3).is_err());
    assert!(idx.query_top_k(b"zzz", 3).unwrap().is_empty());
    assert!(idx.query_top_k(b"a", 0).unwrap().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Top-k probabilities equal the k largest scanner probabilities (above
    /// the tau_min horizon) on random strings.
    #[test]
    fn top_k_matches_sorted_scan(
        rows in prop::collection::vec(
            prop::collection::vec((0u8..3, 1u32..50), 1..=3),
            1..=12,
        ),
        p in prop::collection::vec(0u8..3, 1..4),
        k in 1usize..6,
    ) {
        let rows: Vec<Vec<(u8, f64)>> = rows
            .into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                let total: u32 = row.iter().map(|&(_, w)| w).sum();
                row.into_iter()
                    .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                    .collect()
            })
            .collect();
        let s = UncertainString::from_rows(rows).unwrap();
        let pattern: Vec<u8> = p.into_iter().map(|c| b'a' + c).collect();
        let tau_min = 0.05;
        let idx = Index::build(&s, tau_min).unwrap();
        let got: Vec<f64> = idx
            .query_top_k(&pattern, k)
            .unwrap()
            .into_iter()
            .map(|(_, pr)| pr)
            .collect();
        let reference: Vec<f64> = reference_top_k(&s, &pattern, usize::MAX)
            .into_iter()
            .filter(|&pr| pr >= tau_min - 1e-12)
            .take(k)
            .collect();
        prop_assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(reference.iter()) {
            prop_assert!((g - r).abs() < 1e-9, "{:?} vs {:?}", got, reference);
        }
        // Output is sorted descending.
        for w in got.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
