//! Cross-crate integration: realistic-scale pipelines from workload
//! generation through every index, with edge-case and failure injection.

use uncertain_strings::{
    baseline::NaiveScanner,
    core::IndexOptions,
    workload::{generate_collection, generate_string, sample_patterns, DatasetConfig, PatternMode},
    ApproxIndex, Error, Index, ListingIndex, RelMetric, UncertainString,
};

#[test]
fn workload_pipeline_substring_search() {
    let s = generate_string(&DatasetConfig::new(4000, 0.3, 123));
    let idx = Index::build(&s, 0.1).unwrap();
    for mode in [
        PatternMode::Probable,
        PatternMode::Weighted,
        PatternMode::Random,
    ] {
        for m in [2, 4, 8, 16] {
            for pattern in sample_patterns(&s, m, 5, mode, 7) {
                for tau in [0.1, 0.3, 0.7] {
                    let got = idx.query(&pattern, tau).unwrap().positions();
                    let expected = NaiveScanner::find(&s, &pattern, tau);
                    assert_eq!(got, expected, "m={m} tau={tau} mode={mode:?}");
                }
            }
        }
    }
}

#[test]
fn workload_pipeline_listing() {
    let docs = generate_collection(&DatasetConfig::new(1500, 0.25, 55));
    let idx = ListingIndex::build(&docs, 0.1).unwrap();
    let all = UncertainString::new(
        docs.iter()
            .flat_map(|d| d.positions().iter().cloned())
            .collect(),
    );
    for pattern in sample_patterns(&all, 3, 10, PatternMode::Probable, 3) {
        for tau in [0.1, 0.4] {
            let got: Vec<usize> = idx
                .query(&pattern, tau)
                .unwrap()
                .into_iter()
                .map(|h| h.doc)
                .collect();
            let expected = NaiveScanner::listing(&docs, &pattern, tau);
            assert_eq!(got, expected, "tau={tau}");
        }
    }
}

#[test]
fn workload_pipeline_approx() {
    let s = generate_string(&DatasetConfig::new(2500, 0.3, 77));
    let eps = 0.05;
    let idx = ApproxIndex::build(&s, 0.1, eps).unwrap();
    for pattern in sample_patterns(&s, 5, 10, PatternMode::Probable, 11) {
        for tau in [0.15, 0.4, 0.8] {
            let approx = idx.query(&pattern, tau).unwrap().positions();
            let exact = NaiveScanner::find(&s, &pattern, tau);
            let slack = NaiveScanner::find(&s, &pattern, tau - eps);
            assert!(exact.iter().all(|p| approx.contains(p)), "missed hits");
            assert!(approx.iter().all(|p| slack.contains(p)), "spurious hits");
        }
    }
}

#[test]
fn long_patterns_cross_blocking_threshold() {
    // max_short over the transformed text will be ~log2(N); patterns of
    // length 32/64 exercise the blocking path.
    let s = generate_string(&DatasetConfig::new(3000, 0.15, 31));
    let idx = Index::build(&s, 0.1).unwrap();
    for m in [24, 32, 64] {
        for pattern in sample_patterns(&s, m, 4, PatternMode::Probable, 13) {
            let got = idx.query(&pattern, 0.1).unwrap().positions();
            let expected = NaiveScanner::find(&s, &pattern, 0.1);
            assert_eq!(got, expected, "m={m}");
        }
    }
}

#[test]
fn ablation_options_do_not_change_answers() {
    let s = generate_string(&DatasetConfig::new(1200, 0.3, 9));
    let configs = [
        IndexOptions::default(),
        IndexOptions {
            disable_dedup: true,
            ..Default::default()
        },
        IndexOptions {
            disable_long_levels: true,
            ..Default::default()
        },
        IndexOptions {
            max_short_level: Some(4),
            ..Default::default()
        },
        IndexOptions {
            long_level_ratio: Some(4),
            ..Default::default()
        },
    ];
    let indexes: Vec<Index> = configs
        .iter()
        .map(|o| Index::build_with(&s, 0.1, o).unwrap())
        .collect();
    for pattern in sample_patterns(&s, 6, 8, PatternMode::Weighted, 21) {
        let reference = indexes[0].query(&pattern, 0.2).unwrap().positions();
        for (k, idx) in indexes.iter().enumerate().skip(1) {
            assert_eq!(
                idx.query(&pattern, 0.2).unwrap().positions(),
                reference,
                "config {k} diverged"
            );
        }
    }
}

#[test]
fn theta_zero_and_theta_heavy_extremes() {
    for theta in [0.0, 0.5] {
        let s = generate_string(&DatasetConfig::new(800, theta, 3));
        let idx = Index::build(&s, 0.1).unwrap();
        for pattern in sample_patterns(&s, 4, 5, PatternMode::Probable, 5) {
            assert_eq!(
                idx.query(&pattern, 0.2).unwrap().positions(),
                NaiveScanner::find(&s, &pattern, 0.2),
                "theta={theta}"
            );
        }
    }
}

#[test]
fn query_error_paths() {
    let s = generate_string(&DatasetConfig::new(200, 0.2, 1));
    let idx = Index::build(&s, 0.2).unwrap();
    assert!(matches!(idx.query(b"", 0.5), Err(Error::EmptyPattern)));
    assert!(matches!(
        idx.query(b"A\0B", 0.5),
        Err(Error::PatternContainsSentinel)
    ));
    assert!(matches!(
        idx.query(b"AA", 0.1),
        Err(Error::ThresholdBelowTauMin { .. })
    ));
    assert!(matches!(
        idx.query(b"AA", -0.5),
        Err(Error::InvalidThreshold { .. })
    ));
    assert!(matches!(
        idx.query(b"AA", 1.01),
        Err(Error::InvalidThreshold { .. })
    ));
}

#[test]
fn or_metrics_on_generated_collection() {
    let docs = generate_collection(&DatasetConfig::new(600, 0.2, 42));
    let idx = ListingIndex::build(&docs, 0.05).unwrap();
    let all_worlds: Vec<u8> = docs[0].most_probable_world();
    let pattern = &all_worlds[0..2];
    for metric in [RelMetric::Or, RelMetric::IndependentOr] {
        let hits = idx.query_with_metric(pattern, 0.05, metric).unwrap();
        for h in &hits {
            assert!(h.relevance >= 0.05 - 1e-9);
            assert!(h.doc < docs.len());
        }
    }
}

#[test]
fn pattern_longer_than_any_factor_is_empty_not_wrong() {
    let s = generate_string(&DatasetConfig::new(300, 0.4, 8));
    let idx = Index::build(&s, 0.3).unwrap();
    // A 200-char pattern cannot reach probability 0.3 through θ=0.4
    // uncertainty; the index must return empty (and the scanner agrees).
    let world = s.most_probable_world();
    let pattern = &world[0..200];
    assert_eq!(
        idx.query(pattern, 0.3).unwrap().positions(),
        NaiveScanner::find(&s, pattern, 0.3)
    );
}

#[test]
fn build_stats_scale_sanely() {
    let small = Index::build(&generate_string(&DatasetConfig::new(500, 0.2, 2)), 0.1).unwrap();
    let large = Index::build(&generate_string(&DatasetConfig::new(5000, 0.2, 2)), 0.1).unwrap();
    assert!(large.stats().transformed_len > small.stats().transformed_len);
    assert!(large.stats().heap_bytes > small.stats().heap_bytes);
    assert!(large.stats().num_factors > small.stats().num_factors);
}
