//! End-to-end reproductions of every worked example in the paper, driven
//! through the public facade crate.

use uncertain_strings::{
    baseline::NaiveScanner, ApproxIndex, Index, ListingIndex, SimpleIndex, SpecialIndex,
    SpecialUncertainString, UncertainString,
};

/// Figure 1: the uncertain string S and its possible worlds.
#[test]
fn figure_1_possible_worlds() {
    let s = UncertainString::parse("a:.3,b:.4,d:.3 | a:.6,c:.4 | d | a:.5,c:.5 | a").unwrap();
    assert_eq!(s.len(), 5);
    assert_eq!(s.total_choices(), 9);
    let worlds = s.possible_worlds().unwrap();
    assert_eq!(worlds.len(), 12);
    let p = |w: &[u8]| {
        worlds
            .iter()
            .find(|(x, _)| x == w)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    };
    // The probabilities tabulated in Figure 1(b).
    assert!((p(b"aadaa") - 0.09).abs() < 1e-12);
    assert!((p(b"aadca") - 0.09).abs() < 1e-12);
    assert!((p(b"acdaa") - 0.06).abs() < 1e-12);
    assert!((p(b"badaa") - 0.12).abs() < 1e-12);
    assert!((p(b"dadaa") - 0.09).abs() < 1e-12);
    assert!((p(b"dcdca") - 0.06).abs() < 1e-12);
}

/// Figure 2: string listing (“BF”, 0.1) returns only d1.
#[test]
fn figure_2_string_listing() {
    let docs = vec![
        UncertainString::parse("A:.4,B:.3,F:.3 | B:.3,L:.3,F:.3,J:.1 | F:.5,J:.5").unwrap(),
        UncertainString::parse("A:.6,C:.4 | B:.5,F:.3,E:.2 | B:.4,C:.3,P:.2,F:.1").unwrap(),
        UncertainString::parse("A:.4,F:.4,P:.2 | I:.3,L:.3,P:.3,T:.1 | A").unwrap(),
    ];
    let idx = ListingIndex::build(&docs, 0.05).unwrap();
    let hits = idx.query(b"BF", 0.1).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].doc, 0);
}

/// Figure 3 / §3.2: the At4g15440 fragment, the "AT" query, and the SFPQ
/// window probability.
#[test]
fn figure_3_queries() {
    let s = UncertainString::parse(
        "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
         I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
    )
    .unwrap();
    assert!((s.match_probability(b"SFPQ", 1) - 0.35).abs() < 1e-12);
    let idx = Index::build(&s, 0.02).unwrap();
    // {p = "AT", tau = 0.4}: position 9 in the paper's 1-based indexing.
    assert_eq!(idx.query(b"AT", 0.4).unwrap().positions(), vec![8]);
}

/// Figure 5: the simple index on the special string (banana).
#[test]
fn figure_5_simple_and_efficient_special_index() {
    let x = SpecialUncertainString::new(b"banana".to_vec(), vec![0.4, 0.7, 0.5, 0.8, 0.9, 0.6])
        .unwrap();
    // Efficient index (§4.2).
    let idx = SpecialIndex::build(&x).unwrap();
    let r = idx.query(b"ana", 0.3).unwrap();
    assert_eq!(r.positions(), vec![3]);
    // The suffix range of "ana" contains both occurrences; only one passes.
    let r = idx.query(b"ana", 0.2).unwrap();
    assert_eq!(r.positions(), vec![1, 3]);
}

/// Figure 10: the running example of Algorithm 4 (query ("QP", 0.4) on the
/// transformed general string; the paper reports position 1, 1-based).
#[test]
fn figure_10_general_index() {
    let s = UncertainString::parse("Q:.7,S:.3 | Q:.3,P:.7 | P | A:.4,F:.3,P:.2,Q:.1").unwrap();
    let idx = Index::build(&s, 0.1).unwrap();
    let r = idx.query(b"QP", 0.4).unwrap();
    assert_eq!(r.positions(), vec![0]);
    assert!((r.hits()[0].1 - 0.49).abs() < 1e-9);
    // The simple index (§4.1 baseline) agrees.
    let simple = SimpleIndex::build(&s, 0.1).unwrap();
    assert_eq!(simple.query(b"QP", 0.4).unwrap(), vec![0]);
}

/// §5.1: maximal factors of Figure 3's string at location 5 w.r.t. 0.15 are
/// QPA, QPF, TPA, TPF.
#[test]
fn section_5_maximal_factors() {
    let s = UncertainString::parse(
        "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
         I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
    )
    .unwrap();
    // Location 5 in the paper's 1-based indexing = position 4 here.
    let t = uncertain_strings::uncertain::transform(&s, 0.15).unwrap();
    let text = t.special.chars();
    for factor in [&b"QPA"[..], b"QPF", b"TPA", b"TPF"] {
        let found = (0..text.len() - factor.len())
            .any(|k| &text[k..k + factor.len()] == factor && t.source_pos(k) == Some(4));
        assert!(
            found,
            "maximal factor {:?} at location 5 missing",
            String::from_utf8_lossy(factor)
        );
    }
}

/// §7: the approximate index honors the additive-error contract on the
/// paper's examples.
#[test]
fn section_7_approximate_contract() {
    let s = UncertainString::parse(
        "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
         I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
    )
    .unwrap();
    let eps = 0.05;
    let idx = ApproxIndex::build(&s, 0.02, eps).unwrap();
    for pattern in [&b"AT"[..], b"PQ", b"PA", b"FP"] {
        for tau in [0.1, 0.3, 0.5] {
            let approx = idx.query(pattern, tau).unwrap().positions();
            let exact = NaiveScanner::find(&s, pattern, tau);
            let slack = NaiveScanner::find(&s, pattern, tau - eps);
            for p in &exact {
                assert!(approx.contains(p), "missed {p}");
            }
            for p in &approx {
                assert!(slack.contains(p), "spurious {p}");
            }
        }
    }
}
