//! End-to-end tests of the §3.3 correlation model through every layer:
//! model evaluation, transform upper-bounding, and index verification.

use uncertain_strings::{
    baseline::NaiveScanner, Correlation, CorrelationSet, Index, ListingIndex, SpecialIndex,
    SpecialUncertainString, UncertainString,
};

fn corr(
    subject_pos: usize,
    subject_char: u8,
    cond_pos: usize,
    cond_char: u8,
    p_present: f64,
    p_absent: f64,
) -> Correlation {
    Correlation {
        subject_pos,
        subject_char,
        cond_pos,
        cond_char,
        p_present,
        p_absent,
    }
}

/// Figure 4's string with a backward correlation.
fn figure_4_string() -> UncertainString {
    let mut s = UncertainString::parse("e:.6,f:.4 | q | z:.36").unwrap();
    let mut set = CorrelationSet::new();
    set.add(corr(2, b'z', 0, b'e', 0.3, 0.4)).unwrap();
    s.set_correlations(set).unwrap();
    s
}

#[test]
fn scanner_handles_all_three_window_cases() {
    let s = figure_4_string();
    // In-window, condition chosen: eqz = .6 * 1 * .3
    let hits = NaiveScanner::find_with_probs(&s, b"eqz", 0.01);
    assert_eq!(hits.len(), 1);
    assert!((hits[0].1 - 0.18).abs() < 1e-12);
    // In-window, condition not chosen: fqz = .4 * 1 * .4
    let hits = NaiveScanner::find_with_probs(&s, b"fqz", 0.01);
    assert!((hits[0].1 - 0.16).abs() < 1e-12);
    // Out-of-window: qz = 1 * (.6*.3 + .4*.4) = .34
    let hits = NaiveScanner::find_with_probs(&s, b"qz", 0.01);
    assert!((hits[0].1 - 0.34).abs() < 1e-12);
}

#[test]
fn general_index_agrees_with_scanner_under_correlation() {
    let s = figure_4_string();
    let idx = Index::build(&s, 0.05).unwrap();
    for pattern in [&b"eqz"[..], b"fqz", b"qz", b"z", b"eq", b"e"] {
        for tau in [0.05, 0.17, 0.2, 0.33, 0.35, 0.5] {
            assert_eq!(
                idx.query(pattern, tau).unwrap().positions(),
                NaiveScanner::find(&s, pattern, tau),
                "pattern {:?} tau {tau}",
                String::from_utf8_lossy(pattern)
            );
        }
    }
}

#[test]
fn index_probabilities_are_correlation_exact() {
    let s = figure_4_string();
    let idx = Index::build(&s, 0.05).unwrap();
    for (pos, p) in idx.query(b"qz", 0.05).unwrap() {
        assert!((p - s.match_probability(b"qz", pos)).abs() < 1e-12);
        assert!((p - 0.34).abs() < 1e-12);
    }
}

#[test]
fn forward_correlation_within_window() {
    // Subject at position 0 conditioned on a LATER position (forward edge):
    // the transform's upper bound must still be sound.
    let mut s = UncertainString::parse("x:.5 | a:.5,b:.5 | y").unwrap();
    let mut set = CorrelationSet::new();
    set.add(corr(0, b'x', 1, b'a', 0.9, 0.1)).unwrap();
    s.set_correlations(set).unwrap();
    let idx = Index::build(&s, 0.05).unwrap();
    // xay: x's probability is conditional on a present = .9; total .9*.5*1.
    for pattern in [&b"xay"[..], b"xby", b"xa", b"xb", b"x"] {
        for tau in [0.05, 0.1, 0.3, 0.46, 0.5] {
            assert_eq!(
                idx.query(pattern, tau).unwrap().positions(),
                NaiveScanner::find(&s, pattern, tau),
                "pattern {:?} tau {tau}",
                String::from_utf8_lossy(pattern)
            );
        }
    }
}

#[test]
fn special_index_boost_prevents_missed_uplifts() {
    // Stored probability far below the conditional: without the §4.1 boost
    // the RMQ recursion would prune a true match.
    let x = SpecialUncertainString::new(b"abc".to_vec(), vec![1.0, 0.1, 1.0]).unwrap();
    let mut set = CorrelationSet::new();
    set.add(corr(1, b'b', 0, b'a', 0.95, 0.05)).unwrap();
    let idx = SpecialIndex::build_with(&x, set, &Default::default()).unwrap();
    // abc window: b's probability is .95 (a present) → product .95.
    let hits = idx.query(b"abc", 0.9).unwrap();
    assert_eq!(hits.positions(), vec![0]);
    assert!((hits.hits()[0].1 - 0.95).abs() < 1e-12);
    // bc window: marginal for b = 1.0*.95 + 0*.05 = .95 (a always present).
    let hits = idx.query(b"bc", 0.9).unwrap();
    assert_eq!(hits.positions(), vec![1]);
}

#[test]
fn listing_with_correlated_documents() {
    let mut d0 = UncertainString::parse("a:.5,b:.5 | c:.2 | d").unwrap();
    let mut set = CorrelationSet::new();
    set.add(corr(1, b'c', 0, b'a', 0.9, 0.1)).unwrap();
    d0.set_correlations(set).unwrap();
    let d1 = UncertainString::parse("a | c:.15 | d").unwrap();
    let docs = vec![d0, d1];
    let idx = ListingIndex::build(&docs, 0.05).unwrap();
    for pattern in [&b"acd"[..], b"cd", b"c"] {
        for tau in [0.05, 0.12, 0.2, 0.4, 0.5] {
            let got: Vec<usize> = idx
                .query(pattern, tau)
                .unwrap()
                .into_iter()
                .map(|h| h.doc)
                .collect();
            let expected = NaiveScanner::listing(&docs, pattern, tau);
            assert_eq!(got, expected, "pattern {pattern:?} tau {tau}");
        }
    }
}

#[test]
fn correlation_chain_through_many_positions() {
    // Several subjects conditioned on one hub position.
    let mut s = UncertainString::parse("h:.5,g:.5 | a:.5 | b:.5 | c:.5").unwrap();
    let mut set = CorrelationSet::new();
    set.add(corr(1, b'a', 0, b'h', 0.8, 0.2)).unwrap();
    set.add(corr(2, b'b', 0, b'h', 0.7, 0.3)).unwrap();
    set.add(corr(3, b'c', 0, b'h', 0.6, 0.4)).unwrap();
    s.set_correlations(set).unwrap();
    let idx = Index::build(&s, 0.02).unwrap();
    for pattern in [&b"habc"[..], b"gabc", b"abc", b"ab", b"bc"] {
        for tau in [0.02, 0.1, 0.2, 0.35] {
            assert_eq!(
                idx.query(pattern, tau).unwrap().positions(),
                NaiveScanner::find(&s, pattern, tau),
                "pattern {:?} tau {tau}",
                String::from_utf8_lossy(pattern)
            );
        }
    }
}
