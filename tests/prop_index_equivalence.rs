//! Property tests: every index agrees with the naive scanner and the
//! possible-world oracle on arbitrary small uncertain strings.

use proptest::prelude::*;
use uncertain_strings::{
    baseline::{NaiveScanner, PossibleWorldOracle},
    ApproxIndex, Index, ListingIndex, SimpleIndex, UncertainString,
};

/// Strategy: a small uncertain string over the alphabet {a, b, c} with
/// random per-position pdfs (1–3 choices, probabilities normalized).
fn uncertain_string(max_len: usize) -> impl Strategy<Value = UncertainString> {
    prop::collection::vec(
        prop::collection::vec((0u8..3, 1u32..100), 1..=3),
        1..=max_len,
    )
    .prop_map(|rows| {
        let rows: Vec<Vec<(u8, f64)>> = rows
            .into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(c, _)| c);
                row.dedup_by_key(|&mut (c, _)| c);
                let total: u32 = row.iter().map(|&(_, w)| w).sum();
                row.into_iter()
                    .map(|(c, w)| (b'a' + c, w as f64 / total as f64))
                    .collect()
            })
            .collect();
        UncertainString::from_rows(rows).expect("normalized rows are valid")
    })
}

/// Strategy: a short pattern over the same alphabet.
fn pattern(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..3, 1..=max_len)
        .prop_map(|v| v.into_iter().map(|c| b'a' + c).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The general index returns exactly the scanner's answer set for any
    /// tau >= tau_min.
    #[test]
    fn index_matches_scanner(
        s in uncertain_string(14),
        p in pattern(5),
        tau_idx in 0usize..4,
    ) {
        let taus = [0.1, 0.25, 0.5, 0.8];
        let tau = taus[tau_idx];
        let idx = Index::build(&s, 0.1).unwrap();
        let got = idx.query(&p, tau).unwrap().positions();
        let expected = NaiveScanner::find(&s, &p, tau);
        prop_assert_eq!(got, expected);
    }

    /// The scanner itself agrees with exhaustive possible-world enumeration
    /// (closing the loop on the ground truth).
    #[test]
    fn scanner_matches_oracle(
        s in uncertain_string(10),
        p in pattern(4),
    ) {
        let tau = 0.2;
        let scan = NaiveScanner::find(&s, &p, tau);
        let oracle = PossibleWorldOracle::matches(&s, &p, tau).unwrap();
        prop_assert_eq!(scan, oracle);
    }

    /// The simple (scan-the-range) index agrees with the efficient one.
    #[test]
    fn simple_index_matches_efficient(
        s in uncertain_string(12),
        p in pattern(4),
    ) {
        let tau = 0.3;
        let simple = SimpleIndex::build(&s, 0.1).unwrap();
        let efficient = Index::build(&s, 0.1).unwrap();
        prop_assert_eq!(
            simple.query(&p, tau).unwrap(),
            efficient.query(&p, tau).unwrap().positions()
        );
    }

    /// Reported probabilities equal the model's exact window probabilities.
    #[test]
    fn reported_probabilities_are_exact(
        s in uncertain_string(12),
        p in pattern(4),
    ) {
        let idx = Index::build(&s, 0.1).unwrap();
        for (pos, prob) in idx.query(&p, 0.1).unwrap() {
            let direct = s.match_probability(&p, pos);
            prop_assert!((prob - direct).abs() < 1e-9);
        }
    }

    /// Listing over a random collection equals the per-document scan.
    #[test]
    fn listing_matches_naive(
        docs in prop::collection::vec(uncertain_string(8), 1..5),
        p in pattern(3),
    ) {
        let tau = 0.25;
        let idx = ListingIndex::build(&docs, 0.1).unwrap();
        let got: Vec<usize> = idx.query(&p, tau).unwrap().into_iter().map(|h| h.doc).collect();
        let expected = NaiveScanner::listing(&docs, &p, tau);
        prop_assert_eq!(got, expected);
    }

    /// The approximate index respects its sandwich contract.
    #[test]
    fn approx_sandwich(
        s in uncertain_string(12),
        p in pattern(4),
        tau_idx in 0usize..3,
    ) {
        let eps = 0.08;
        let taus = [0.15, 0.35, 0.6];
        let tau = taus[tau_idx];
        let idx = ApproxIndex::build(&s, 0.1, eps).unwrap();
        let approx = idx.query(&p, tau).unwrap().positions();
        let exact = NaiveScanner::find(&s, &p, tau);
        let slack = NaiveScanner::find(&s, &p, tau - eps);
        for pos in &exact {
            prop_assert!(approx.contains(pos), "missed exact hit {}", pos);
        }
        for pos in &approx {
            prop_assert!(slack.contains(pos), "hit {} below tau - eps", pos);
        }
    }

    /// Queries at tau = tau_min (the boundary) behave identically to the
    /// scanner — no off-by-epsilon at the construction threshold.
    #[test]
    fn boundary_threshold(
        s in uncertain_string(10),
        p in pattern(3),
    ) {
        let tau_min = 0.2;
        let idx = Index::build(&s, tau_min).unwrap();
        prop_assert_eq!(
            idx.query(&p, tau_min).unwrap().positions(),
            NaiveScanner::find(&s, &p, tau_min)
        );
    }
}
