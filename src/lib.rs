//! # uncertain-strings
//!
//! Probabilistic threshold indexing for uncertain strings — a Rust
//! reproduction of Thankachan, Patil, Shah, Biswas,
//! *"Probabilistic Threshold Indexing for Uncertain Strings"* (EDBT 2016).
//!
//! An **uncertain string** assigns, at each position, a probability
//! distribution over characters. A deterministic pattern `p` *matches at
//! position i with threshold τ* when the product of the per-position
//! character probabilities along `p` is at least `τ`. This crate family
//! answers, in near-optimal time after linear-space preprocessing:
//!
//! * **Substring searching** ([`Index`]): all positions of an uncertain
//!   string where `p` matches with probability ≥ τ, for any `τ ≥ τmin`.
//! * **String listing** ([`ListingIndex`]): all strings in a collection
//!   containing at least one match of `p` with probability ≥ τ.
//! * **Approximate search** ([`ApproxIndex`]): O(m + occ) retrieval with an
//!   additive error ε on the probability threshold.
//!
//! Indexes are built once and served many times: [`Snapshot`] persists any
//! index (including [`ApproxIndex`]) to a versioned, checksummed binary file
//! that loads back with byte-identical query behaviour; a whole collection
//! packs into one single-file *collection snapshot* (`.coll`, manifest +
//! per-section checksums) via `QueryService::save_collection`; and
//! [`QueryService`] serves batches mixing all four [`QueryRequest`] modes —
//! threshold, top-k, listing, approx — over a sharded collection with a
//! fixed thread pool, deterministic merge, and a per-mode LRU result cache.
//!
//! Collections are **mutable** too: [`LiveService`] accepts inserts and
//! deletes at serving time — writes go through a checksummed, fsynced
//! write-ahead log into a scan-served memtable (immediately queryable,
//! answers bit-identical to a built index under the
//! [`QueryExecutor`](ustr_core::QueryExecutor) contract), a background
//! thread seals memtables into immutable `.coll` segments built with the
//! ordinary constructors, and a compactor merges small segments while
//! dropping tombstoned documents. Static and live serving share one
//! dispatcher (`ustr_service::Engine` over `SegmentSet`), so a live
//! collection answers byte-identically to a static rebuild at every point
//! of its lifecycle.
//!
//! # Quickstart
//!
//! ```
//! use uncertain_strings::{Index, UncertainString};
//!
//! // Figure 3 of the paper: a protein fragment with uncertain positions.
//! let s = UncertainString::parse(
//!     "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
//!      I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
//! )
//! .unwrap();
//!
//! let index = Index::build(&s, 0.1).unwrap();
//! let hits = index.query(b"AT", 0.4).unwrap();
//! // "AT" matches at position 8 with probability 1.0 * 0.5 = 0.5;
//! // the match at position 6 only reaches 0.4 * 0.1 < 0.4 and is excluded.
//! assert_eq!(hits.positions(), vec![8]);
//! ```
//!
//! # Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`UncertainString`], [`SpecialUncertainString`], correlation & transform | `ustr-uncertain` | data model, possible worlds, Lemma-2 factor transform |
//! | [`Index`], [`SpecialIndex`], [`ListingIndex`], [`ApproxIndex`], [`core::QueryExecutor`] | `ustr-core` | the paper's indexes (§4–§7) + the execution-strategy contract |
//! | [`Snapshot`], [`StoreError`], snapshot/collection/WAL formats | `ustr-store` | versioned binary index persistence; single-file collection snapshots; write-ahead log + live manifest |
//! | [`QueryService`], [`QueryRequest`], [`ServiceConfig`], [`DocHits`], [`TopHit`] | `ustr-service` | concurrent sharded serving: four typed query modes, one `Engine` dispatcher over `SegmentSet`s, deterministic merge, per-mode LRU cache |
//! | [`LiveService`], [`LiveConfig`] | `ustr-live` | mutable collections: WAL → memtable → sealed segments → compaction |
//! | [`NetServer`], [`NetClient`], [`ServerConfig`] | `ustr-net` | TCP serving: checksummed wire protocol, handshake, pipelined concurrent server, client |
//! | [`NaiveScanner`], [`SimpleIndex`], [`ScanIndex`], DP containment | `ustr-baseline` | baselines, test oracles, and the scan-backed memtable executor |
//! | [`StreamMatcher`], [`ContainmentTracker`] | `ustr-stream` | online matching over event streams (§2) |
//! | suffix arrays / trees | `ustr-suffix` | SA-IS, LCP, suffix tree substrate |
//! | RMQ structures | `ustr-rmq` | Lemma-1 substrate |
//! | dataset generators | `ustr-workload` | §8.1 synthetic workloads |

#![forbid(unsafe_code)]

pub use ustr_baseline::{
    self as baseline, NaiveScanner, PossibleWorldOracle, ScanIndex, SimpleIndex,
};
pub use ustr_core::{
    self as core, ApproxIndex, Error, Index, ListingIndex, QueryResult, RelMetric, SpecialIndex,
};
pub use ustr_live::{self as live, LiveConfig, LiveError, LiveService};
pub use ustr_net::{self as net, NetClient, NetError, NetServer, ServerConfig};
pub use ustr_rmq as rmq;
pub use ustr_service::{
    self as service, DocHits, QueryRequest, QueryResponse, QueryService, ServiceConfig, TopHit,
};
pub use ustr_store::{self as store, Snapshot, SnapshotKind, StoreError};
pub use ustr_stream::{self as stream, Alert, ContainmentTracker, StreamMatcher};
pub use ustr_suffix::{self as suffix, SuffixArray, SuffixTree};
pub use ustr_uncertain::{
    self as uncertain, Correlation, CorrelationSet, SpecialUncertainString, Transformed,
    UncertainChar, UncertainString,
};
pub use ustr_workload as workload;
