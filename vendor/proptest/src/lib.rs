//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in network-isolated environments, so the subset of
//! proptest used by its property tests is vendored here: the [`proptest!`]
//! macro, `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`,
//! range / tuple / `prop::collection::vec` / `prop::sample::select` /
//! [`any`] strategies, and [`prop_oneof!`].
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (via the
//!   panic message) but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed from
//!   its own name, so runs are reproducible without persistence files.
//! * **Uniform sampling only** — no recursive or filtered strategies.

use std::fmt;

pub use rand::{rngs::StdRng, Rng, SeedableRng};

/// Error type carried by `prop_assert*` early returns.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// RNG handed to strategies (wraps the vendored deterministic StdRng).
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds deterministically (the `proptest!` macro hashes the test name).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }

    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        self.0.gen()
    }

    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.0.gen_range(0..bound.max(1))
    }

    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        self.0.gen()
    }
}

/// Runs one generated case (used by the `proptest!` expansion; a function
/// rather than a closure call so `FnOnce` bodies need no `mut` binding).
pub fn run_case<F: FnOnce() -> Result<(), TestCaseError>>(case: F) -> Result<(), TestCaseError> {
    case()
}

/// FNV-1a over the test name: a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Integer types samplable from range strategies.
    pub trait RangeValue: Copy {
        fn sample_between(rng: &mut TestRng, lo: Self, hi_exclusive: Self) -> Self;
    }

    macro_rules! impl_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                #[inline]
                fn sample_between(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128;
                    lo.wrapping_add((rng.gen_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: RangeValue> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_between(rng, self.start, self.end)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.gen_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
    }

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// The `any::<T>()` strategy carrier.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_u64() & 1 == 1
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(std::marker::PhantomData)
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(std::marker::PhantomData)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub use strategy::Just;
pub use strategy::{any, Strategy};

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Element-count bounds accepted by [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.gen_index(self.hi_inclusive - self.lo + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_index(self.options.len())].clone()
        }
    }

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };

    /// The `prop::` path alias used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        // `match` keeps scrutinee temporaries alive across the assertion
        // (the same trick std's assert_eq! uses).
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?} == {:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?} == {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Fails the current property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?} != {:?}`",
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?} != {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::seed_from_u64($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let dump = format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let outcome = $crate::run_case(|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                });
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        dump
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}
