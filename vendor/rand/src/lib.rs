//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in network-isolated environments where crates.io is
//! unreachable, so the small deterministic subset of `rand` actually used by
//! the workspace is vendored here: [`rngs::StdRng`], the [`Rng`] sampling
//! trait (`gen`, `gen_range`, `gen_bool`), and [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic under a seed, which is all the workload
//! generators and examples require. Streams differ from the real `rand`
//! crate's `StdRng` (ChaCha12); every consumer in this workspace treats the
//! stream as an opaque deterministic function of the seed, so only
//! *within-workspace* reproducibility matters.

/// Sample a value of type `Self` uniformly from an RNG ("standard"
/// distribution in `rand` terms: `f64` in `[0, 1)`, full range for ints).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range (`a..b` or `a..=b`) that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types samplable from ranges via rejection-free bounded draw.
pub trait UniformInt: Copy {
    fn from_u64_mod(value: u64, low: Self, span: u64) -> Self;
    fn span(low: Self, high_exclusive: Self) -> u64;
    /// Inclusive span; 0 means the range covers the type's full domain.
    fn checked_inclusive_span(low: Self, high: Self) -> u64;
    /// Truncating bit cast of a raw draw (full-domain inclusive ranges).
    fn truncate(value: u64) -> Self;
}

// $ut is the unsigned type of the same width: the two's-complement
// difference reinterpreted unsigned is the true span even for signed
// ranges wider than the signed maximum (e.g. -2e9..2e9 for i32), where a
// plain `as u64` on the signed difference would sign-extend garbage.
macro_rules! impl_uniform_int {
    ($($t:ty => $ut:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn from_u64_mod(value: u64, low: Self, span: u64) -> Self {
                low.wrapping_add((value % span) as $t)
            }
            #[inline]
            fn span(low: Self, high_exclusive: Self) -> u64 {
                assert!(low < high_exclusive, "cannot sample from empty range");
                high_exclusive.wrapping_sub(low) as $ut as u64
            }
            #[inline]
            fn checked_inclusive_span(low: Self, high: Self) -> u64 {
                assert!(low <= high, "cannot sample from empty range");
                (high.wrapping_sub(low) as $ut as u64).wrapping_add(1)
            }
            #[inline]
            fn truncate(value: u64) -> Self {
                value as $t
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let span = T::span(self.start, self.end);
        T::from_u64_mod(rng.next_u64(), self.start, span)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        let span = T::checked_inclusive_span(low, high);
        if span == 0 {
            // The range covers the type's full domain: any draw is uniform.
            return T::truncate(rng.next_u64());
        }
        T::from_u64_mod(rng.next_u64(), low, span)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The sampling interface used throughout the workspace.
pub trait Rng: RngCore {
    /// Uniform sample of the standard distribution for `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (see the crate docs for how this
    /// relates to the real `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..13);
            assert!((3..13).contains(&x));
            seen[x - 3] = true;
            let y = rng.gen_range(0..=5u8);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&x), "{x}");
            let y = rng.gen_range(i64::MIN..i64::MAX);
            assert!(y < i64::MAX);
            let z = rng.gen_range(i8::MIN..=i8::MAX); // full domain
            let _ = z;
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
