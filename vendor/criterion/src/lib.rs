//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in network-isolated environments, so the bench API
//! subset used by `crates/bench` is vendored here: benchmark groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up
//! followed by `sample_size` timed samples and prints the mean and best
//! wall-clock time per iteration. There is no statistical analysis, HTML
//! report, or baseline comparison — the goal is that `cargo bench` compiles,
//! runs, and produces comparable relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for groups benchmarking one function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, recording mean and best sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up (also primes caches and lazy statics).
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        self.result = Some((total / self.samples as u32, best));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((mean, best)) => println!(
                "{}/{}: mean {:?}, best {:?} ({} samples)",
                self.name, id.label, mean, best, self.sample_size
            ),
            None => println!("{}/{}: no measurement recorded", self.name, id.label),
        }
        self.criterion.benchmarks_run += 1;
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; printing happens per benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Kept for API parity with the real crate's generated `main`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group (default 10 samples per benchmark).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
