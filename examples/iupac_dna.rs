//! DNA with IUPAC ambiguity codes (§2 and the NC-IUB standard the paper
//! cites): search a nucleotide sequence containing incompletely specified
//! bases for a restriction-site motif at several confidence levels.
//!
//! Run with: `cargo run --release --example iupac_dna`

use rand::{rngs::StdRng, Rng, SeedableRng};
use uncertain_strings::{workload::iupac, Index};

/// Simulates an assembly with ambiguity codes at low-coverage loci.
fn simulate_assembly(len: usize, ambiguity: f64, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bases = b"ACGT";
    let codes = b"RYSWKMN";
    (0..len)
        .map(|_| {
            if rng.gen::<f64>() < ambiguity {
                codes[rng.gen_range(0..codes.len())]
            } else {
                bases[rng.gen_range(0..bases.len())]
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut fasta = simulate_assembly(30_000, 0.06, 11);
    // Plant an EcoRI site (GAATTC) behind ambiguity codes: RAATTY can read
    // as GAATTC with probability .5 * .5 = .25.
    fasta.splice(1_000..1_006, *b"RAATTY");
    fasta.splice(2_000..2_006, *b"GAATTC"); // exact site
    let s = iupac::from_iupac(&fasta)?;
    println!(
        "assembly: {} bases, {:.1}% ambiguity codes",
        fasta.len(),
        100.0 * iupac::ambiguity_fraction(&fasta)
    );

    let index = Index::build(&s, 0.05)?;
    println!(
        "index: {} factors, {:.1} MiB\n",
        index.stats().num_factors,
        index.stats().heap_mib()
    );

    let motif = b"GAATTC"; // EcoRI restriction site
    for tau in [0.9, 0.25, 0.05] {
        let hits = index.query(motif, tau)?;
        let shown: Vec<String> = hits
            .iter()
            .take(5)
            .map(|&(pos, p)| format!("{pos} (p={p:.3})"))
            .collect();
        println!(
            "GAATTC at confidence >= {tau:<4}: {:>3} site(s)   {}",
            hits.len(),
            shown.join(", ")
        );
    }

    // Ranked retrieval: the most trustworthy candidate sites first.
    println!("\ntop 5 candidate sites by confidence:");
    for (rank, (pos, p)) in index.query_top_k(motif, 5)?.iter().enumerate() {
        println!("  #{} position {pos} (p={p:.3})", rank + 1);
    }
    Ok(())
}
