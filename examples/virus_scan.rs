//! String-listing scenario: quarantine files containing a virus pattern
//! (the motivating application of §6).
//!
//! A collection of files with fuzzy content (damaged sectors, OCR noise,
//! polymorphic encodings) is modeled as uncertain strings. A scanner lists
//! every file containing the signature with probability above a confidence
//! threshold — in time proportional to the number of infected files, not
//! the corpus size.
//!
//! Run with: `cargo run --release --example virus_scan`

use rand::{rngs::StdRng, Rng, SeedableRng};
use uncertain_strings::{
    baseline::NaiveScanner, ListingIndex, RelMetric, UncertainChar, UncertainString,
};

const SIGNATURE: &[u8] = b"XEVIL";

/// A "file" of fuzzy text; `infected` plants the signature with per-byte
/// confidence around `fidelity`.
fn make_file(len: usize, infected: bool, fidelity: f64, seed: u64) -> UncertainString {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chars: Vec<UncertainChar> = (0..len)
        .map(|i| {
            let c = b'a' + (rng.gen_range(0..26u8));
            if rng.gen::<f64>() < 0.15 {
                let alt = b'a' + rng.gen_range(0..26u8);
                if alt != c {
                    return UncertainChar::new(vec![(c, 0.8), (alt, 0.2)], i).unwrap();
                }
            }
            UncertainChar::deterministic(c)
        })
        .collect();
    if infected {
        let at = rng.gen_range(0..len - SIGNATURE.len());
        for (k, &sig) in SIGNATURE.iter().enumerate() {
            // The signature byte is observed with probability `fidelity`;
            // the remainder is a corrupted read.
            let noise = b'a' + rng.gen_range(0..26u8);
            let row = if fidelity >= 1.0 - 1e-12 {
                vec![(sig, 1.0)]
            } else {
                vec![(sig, fidelity), (noise, 1.0 - fidelity)]
            };
            chars[at + k] = UncertainChar::new(row, at + k).unwrap();
        }
    }
    UncertainString::new(chars)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 40 files; a handful are infected at varying fidelity.
    let mut files = Vec::new();
    let mut truly_infected = Vec::new();
    for id in 0..40 {
        let infected = id % 9 == 3; // files 3, 12, 21, 30, 39
        let fidelity = match id {
            3 => 1.0,
            12 => 0.95,
            21 => 0.9,
            30 => 0.8,
            _ => 0.6,
        };
        if infected {
            truly_infected.push(id);
        }
        files.push(make_file(400, infected, fidelity, 1000 + id as u64));
    }

    let index = ListingIndex::build(&files, 0.01)?;
    println!(
        "indexed {} files ({} positions total, {:.2} MiB)\n",
        index.num_docs(),
        index.stats().source_len,
        index.stats().heap_mib()
    );
    println!("files with planted signature: {truly_infected:?}\n");

    for tau in [0.9, 0.5, 0.25, 0.05] {
        let hits = index.query(SIGNATURE, tau)?;
        let ids: Vec<usize> = hits.iter().map(|h| h.doc).collect();
        println!("confidence >= {tau:<4}: quarantine {:?}", ids);
        // Cross-check against the scan-every-file baseline.
        let expected = NaiveScanner::listing(&files, SIGNATURE, tau);
        assert_eq!(ids, expected);
    }

    // The OR metric aggregates repeated weak evidence inside one file.
    let or_hits = index.query_with_metric(SIGNATURE, 0.05, RelMetric::Or)?;
    println!(
        "\nOR-relevance >= 0.05: {:?}",
        or_hits
            .iter()
            .map(|h| (h.doc, h.relevance))
            .collect::<Vec<_>>()
    );
    Ok(())
}
