//! Build once, snapshot, serve forever: the `ustr-store` + `ustr-service`
//! workflow end to end.
//!
//! A small collection of uncertain protein reads is indexed per document,
//! snapshotted to disk, loaded back into a sharded concurrent service, and
//! queried in one batch — with the round-trip and determinism guarantees
//! checked along the way.
//!
//! Run with: `cargo run --example snapshot_service`

use uncertain_strings::{
    workload::{generate_collection, DatasetConfig},
    Index, QueryService, ServiceConfig, Snapshot,
};

fn main() {
    // 1. A synthetic collection (the paper's §8.1 protein workload).
    let docs = generate_collection(&DatasetConfig::new(2_000, 0.3, 42));
    println!("collection: {} documents", docs.len());

    // 2. Build one index per document and snapshot the whole collection.
    let dir = std::env::temp_dir().join("ustr_example_snapshots");
    let _ = std::fs::remove_dir_all(&dir);
    let t0 = std::time::Instant::now();
    let built = QueryService::build(&docs, 0.1, ServiceConfig::default()).unwrap();
    let build_time = t0.elapsed();
    built.save_dir(&dir).unwrap();
    println!(
        "built {} indexes in {build_time:?}, snapshots in {}",
        docs.len(),
        dir.display()
    );

    // 3. A fresh process would start here: load the snapshots into a
    //    4-thread, 4-shard service with a 256-entry result cache.
    let t1 = std::time::Instant::now();
    let service = QueryService::load_dir(
        &dir,
        ServiceConfig {
            threads: 4,
            shards: 4,
            cache_capacity: 256,
            epsilon: None,
        },
    )
    .unwrap();
    println!(
        "loaded {} documents into {} shards in {:?} ({:.1}x faster than building)",
        service.num_docs(),
        service.num_shards(),
        t1.elapsed(),
        build_time.as_secs_f64() / t1.elapsed().as_secs_f64().max(1e-9),
    );

    // 4. One batch of queries, fanned across the pool.
    let batch: Vec<(Vec<u8>, f64)> = [&b"LL"[..], b"AA", b"SE", b"GLV"]
        .iter()
        .map(|p| (p.to_vec(), 0.25))
        .collect();
    let results = service.query_batch(&batch);
    for ((pattern, tau), result) in batch.iter().zip(results.iter()) {
        let hits = result.as_ref().unwrap();
        let occurrences: usize = hits.iter().map(|d| d.hits.len()).sum();
        println!(
            "  {:?} tau={tau}: {occurrences} occurrence(s) across {} document(s)",
            String::from_utf8_lossy(pattern),
            hits.len()
        );
    }

    // 5. The contracts this subsystem guarantees, checked live:
    //    (a) parallel batches equal sequential evaluation;
    let sequential = service.query_batch_sequential(&batch);
    for (par, seq) in results.iter().zip(sequential.iter()) {
        assert_eq!(par.as_ref().unwrap(), seq.as_ref().unwrap());
    }
    //    (b) a loaded index answers identically to the freshly built one.
    let single = &docs[0];
    let fresh = Index::build(single, 0.1).unwrap();
    let path = dir.join("doc_00000000.idx");
    let loaded = Index::load(&path).unwrap();
    for pattern in [&b"L"[..], b"AL", b"KDE"] {
        assert_eq!(
            fresh.query(pattern, 0.2).unwrap().hits(),
            loaded.query(pattern, 0.2).unwrap().hits(),
        );
    }
    let (cache_hits, cache_misses) = service.cache_stats();
    println!("cache: {cache_hits} hit(s), {cache_misses} miss(es)");
    println!("round-trip and determinism contracts verified");

    let _ = std::fs::remove_dir_all(&dir);
}
