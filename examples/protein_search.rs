//! Bioinformatics scenario: search a large uncertain protein sequence.
//!
//! Sequencing pipelines annotate each base/residue with quality scores;
//! aligned reads yield per-position character distributions (§2 of the
//! paper). This example builds a synthetic uncertain proteome slice with
//! the paper's §8.1 construction, indexes it once, and serves motif queries
//! at several confidence thresholds, comparing against the online scanning
//! baseline.
//!
//! Run with: `cargo run --release --example protein_search`

use std::time::Instant;

use uncertain_strings::{
    baseline::NaiveScanner,
    workload::{generate_string, sample_patterns, DatasetConfig, PatternMode},
    Index,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DatasetConfig::new(50_000, 0.3, 2024);
    println!(
        "generating uncertain protein sequence: n={}, theta={}",
        cfg.n, cfg.theta
    );
    let s = generate_string(&cfg);
    println!(
        "  {} positions, {:.1}% uncertain, {} total character choices",
        s.len(),
        100.0 * s.uncertain_fraction(),
        s.total_choices()
    );

    let tau_min = 0.1;
    let t0 = Instant::now();
    let index = Index::build(&s, tau_min)?;
    println!(
        "index built in {:?}: expansion {:.2}x, {:.1} MiB\n",
        t0.elapsed(),
        index.stats().expansion(),
        index.stats().heap_mib()
    );

    // Motif queries of increasing length at decreasing thresholds.
    let mut patterns = Vec::new();
    for m in [4, 8, 12] {
        patterns.extend(sample_patterns(&s, m, 3, PatternMode::Probable, 7));
    }
    for pattern in &patterns {
        let tau = 0.2;
        let t = Instant::now();
        let hits = index.query(pattern, tau)?;
        let indexed = t.elapsed();
        let t = Instant::now();
        let scan = NaiveScanner::find(&s, pattern, tau);
        let scanned = t.elapsed();
        assert_eq!(hits.positions(), scan, "index and scanner agree");
        println!(
            "motif {:<14} tau={tau}: {:>4} occurrence(s)  index {indexed:>9.1?}  scan {scanned:>9.1?}",
            String::from_utf8_lossy(pattern),
            hits.len(),
        );
    }

    println!("\nall indexed answers verified against the online scanner");
    Ok(())
}
