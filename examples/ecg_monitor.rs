//! Event-monitoring scenario: ECG beat annotations (§2 of the paper).
//!
//! A Holter monitor labels each heartbeat N (normal), L/R (bundle branch
//! block), A (atrial premature) or V (premature ventricular contraction);
//! ambiguous beats carry a probability distribution. A clinician asks for
//! positions where the pattern "NNAV" — two normal beats, an atrial
//! premature beat, then a PVC — occurs with sufficient confidence.
//!
//! Run with: `cargo run --release --example ecg_monitor`

use rand::{rngs::StdRng, Rng, SeedableRng};
use uncertain_strings::{Index, UncertainChar, UncertainString};

/// Simulates an annotated beat stream: mostly-confident normal beats with
/// occasional ambiguous arrhythmia episodes.
fn simulate_beats(n: usize, seed: u64) -> UncertainString {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut beats = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        if rng.gen::<f64>() < 0.02 && i + 4 <= n {
            // An arrhythmia episode: N N A V with annotation uncertainty.
            let episode: [Vec<(u8, f64)>; 4] = [
                vec![(b'N', 0.9), (b'L', 0.1)],
                vec![(b'N', 0.8), (b'R', 0.2)],
                vec![(b'A', 0.7), (b'N', 0.3)],
                vec![(b'V', 0.6), (b'A', 0.25), (b'N', 0.15)],
            ];
            for (k, row) in episode.into_iter().enumerate() {
                beats.push(UncertainChar::new(row, i + k).expect("valid pdf"));
            }
            i += 4;
        } else if rng.gen::<f64>() < 0.05 {
            // A single noisy beat.
            let alt = [b'L', b'R', b'A', b'V'][rng.gen_range(0..4)];
            let p = 0.55 + rng.gen::<f64>() * 0.3;
            beats.push(UncertainChar::new(vec![(b'N', p), (alt, 1.0 - p)], i).expect("valid pdf"));
            i += 1;
        } else {
            beats.push(UncertainChar::deterministic(b'N'));
            i += 1;
        }
    }
    UncertainString::new(beats)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stream = simulate_beats(20_000, 7);
    println!(
        "ECG stream: {} beats, {:.1}% ambiguous annotations",
        stream.len(),
        100.0 * stream.uncertain_fraction()
    );

    let index = Index::build(&stream, 0.05)?;
    println!(
        "index: {} factors, {:.2} MiB\n",
        index.stats().num_factors,
        index.stats().heap_mib()
    );

    // The clinician sweeps the confidence threshold to trade recall for
    // precision — no rebuild needed (any tau >= tau_min).
    let pattern = b"NNAV";
    for tau in [0.5, 0.3, 0.1, 0.05] {
        let hits = index.query(pattern, tau)?;
        println!(
            "pattern NNAV at confidence >= {tau:<4}: {:>3} episode(s){}",
            hits.len(),
            hits.hits()
                .first()
                .map(|&(pos, p)| format!("   first at beat {pos} (p={p:.3})"))
                .unwrap_or_default()
        );
    }

    // Single-event query: premature ventricular contractions anywhere.
    let v = index.query(b"V", 0.5)?;
    println!("\nconfident PVC annotations: {}", v.len());
    Ok(())
}
