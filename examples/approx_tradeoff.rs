//! The ε trade-off of the approximate index (§7): fewer links and O(m+occ)
//! retrieval, at the cost of an additive error on the threshold.
//!
//! Run with: `cargo run --release --example approx_tradeoff`

use std::time::Instant;

use uncertain_strings::{
    workload::{generate_string, sample_patterns, DatasetConfig, PatternMode},
    ApproxIndex, Index,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s = generate_string(&DatasetConfig::new(20_000, 0.3, 99));
    let tau_min = 0.1;
    let exact = Index::build(&s, tau_min)?;
    println!(
        "exact index: {:.2} MiB, built in {:?}",
        exact.stats().heap_mib(),
        exact.stats().build_time
    );

    let patterns = sample_patterns(&s, 6, 25, PatternMode::Probable, 5);
    let tau = 0.25;

    println!(
        "\n{:<8} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "epsilon", "links", "build", "query", "exact-q", "extra"
    );
    for eps in [0.2, 0.1, 0.05, 0.02] {
        let t0 = Instant::now();
        let approx = ApproxIndex::build(&s, tau_min, eps)?;
        let build = t0.elapsed();

        let mut extra = 0usize;
        let t0 = Instant::now();
        let mut approx_total = 0usize;
        for p in &patterns {
            approx_total += approx.query(p, tau)?.len();
        }
        let approx_time = t0.elapsed();

        let t0 = Instant::now();
        let mut exact_total = 0usize;
        for p in &patterns {
            let e = exact.query(p, tau)?;
            exact_total += e.len();
        }
        let exact_time = t0.elapsed();

        // Sanity: the approximate result always covers the exact one and
        // never reports below tau - eps.
        for p in &patterns {
            let a = approx.query(p, tau)?.positions();
            let must = exact.query(p, tau)?.positions();
            let may = exact.query(p, (tau - eps).max(tau_min))?.positions();
            assert!(must.iter().all(|x| a.contains(x)), "no misses");
            assert!(a.iter().all(|x| may.contains(x)), "no spurious hits");
        }
        extra += approx_total - exact_total.min(approx_total);

        println!(
            "{eps:<8} {:>10} {build:>12.1?} {approx_time:>10.1?} {exact_time:>10.1?} {extra:>8}",
            approx.num_links(),
        );
    }
    println!("\nextra = occurrences reported between tau-eps and tau (allowed by the guarantee)");
    Ok(())
}
