//! Quickstart: index an uncertain string and run threshold queries.
//!
//! Run with: `cargo run --release --example quickstart`

use uncertain_strings::{Index, UncertainString};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An uncertain string in the text format: positions separated by '|',
    // each position a comma-separated character distribution. This is the
    // protein fragment of Figure 3 (gene At4g15440).
    let s = UncertainString::parse(
        "P | S:.7,F:.3 | F | P | Q:.5,T:.5 | P | A:.4,F:.4,P:.2 | \
         I:.3,L:.3,P:.3,T:.1 | A | S:.5,T:.5 | A",
    )?;

    println!("uncertain string ({} positions):\n  {s}\n", s.len());

    // Build the index once, with a construction-time threshold floor
    // tau_min; afterwards any query threshold tau >= tau_min is supported.
    let tau_min = 0.02;
    let index = Index::build(&s, tau_min)?;
    println!(
        "index built: {} factors, transformed length {}, ~{:.1} KiB\n",
        index.stats().num_factors,
        index.stats().transformed_len,
        index.stats().heap_bytes as f64 / 1024.0
    );

    // The paper's motivating query: where does "AT" occur with probability
    // at least 0.4?
    for (pattern, tau) in [
        (&b"AT"[..], 0.4),
        (b"AT", 0.04),
        (b"SFPQ", 0.3),
        (b"PA", 0.3),
        (b"ZZ", 0.3),
    ] {
        let hits = index.query(pattern, tau)?;
        let rendered: Vec<String> = hits
            .iter()
            .map(|&(pos, p)| format!("{pos} (p={p:.3})"))
            .collect();
        println!(
            "query {:?} tau={tau:<5} -> {}",
            String::from_utf8_lossy(pattern),
            if rendered.is_empty() {
                "no occurrences".to_string()
            } else {
                rendered.join(", ")
            }
        );
    }

    Ok(())
}
